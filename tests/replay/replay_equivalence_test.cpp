// Equivalence suite for the sharded replay engine: for any shard count and
// either execution mode, sharded replay must produce bit-identical aggregate
// statistics AND a bit-identical final cache state to sequential replay —
// the shard-by-bucket argument (disjoint unit ranges, per-unit arrival
// order preserved) made checkable.
#include "p4lru/replay/replay.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../test_util.hpp"
#include "p4lru/core/p4lru.hpp"
#include "p4lru/trace/trace_gen.hpp"
#include "p4lru/trace/ycsb.hpp"

namespace p4lru::replay {
namespace {

using FlowCache =
    core::ParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                        std::uint32_t>;
using KeyCache =
    core::ParallelCache<core::P4lru<std::uint64_t, std::uint64_t, 3>,
                        std::uint64_t, std::uint64_t>;
// The same caches pinned to the AoS reference layout (cross-layout
// equivalence: the slab and the unit array must agree bit for bit).
using AosFlowCache =
    core::AosParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                           std::uint32_t>;
using AosKeyCache =
    core::AosParallelCache<core::P4lru<std::uint64_t, std::uint64_t, 3>,
                           std::uint64_t, std::uint64_t>;

/// Compare two parallel arrays unit by unit: occupancy, key order (LRU
/// positions) and the value owned by each key.  The two caches may use
/// different storage layouts; only the unit inspection vocabulary is shared.
template <typename CacheA, typename CacheB>
void expect_same_contents(const CacheA& a, const CacheB& b) {
    ASSERT_EQ(a.unit_count(), b.unit_count());
    for (std::size_t u = 0; u < a.unit_count(); ++u) {
        const auto& ua = a.unit(u);
        const auto& ub = b.unit(u);
        ASSERT_EQ(ua.size(), ub.size()) << "unit " << u;
        for (std::size_t i = 1; i <= ua.size(); ++i) {
            EXPECT_EQ(ua.key_at(i), ub.key_at(i)) << "unit " << u;
            EXPECT_EQ(ua.value_at(i), ub.value_at(i)) << "unit " << u;
        }
    }
}

std::vector<ReplayOp<FlowKey, std::uint32_t>> zipf_ops() {
    trace::TraceConfig cfg;
    cfg.seed = 77;
    cfg.total_packets = 120'000;
    cfg.segments = 4;
    const auto trace = trace::generate_trace(cfg);
    return ops_from_packets(trace);
}

std::vector<ReplayOp<std::uint64_t, std::uint64_t>> ycsb_ops() {
    trace::YcsbConfig cfg;
    cfg.seed = 99;
    cfg.items = 200'000;
    cfg.zipf_alpha = 0.9;
    trace::YcsbWorkload wl(cfg);
    std::vector<ReplayOp<std::uint64_t, std::uint64_t>> ops;
    ops.reserve(80'000);
    for (const auto& op : wl.generate(80'000)) {
        ops.push_back({op.key, op.key * 2 + 1});
    }
    return ops;
}

class ReplayEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReplayEquivalence, ZipfTraceMatchesSequential) {
    const auto ops = zipf_ops();
    FlowCache seq_cache(4096, 0xE1);
    const auto seq = replay_sequential(
        seq_cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops));

    for (const Mode mode : {Mode::kInline, Mode::kThreaded}) {
        FlowCache cache(4096, 0xE1);
        ShardedConfig cfg;
        cfg.shards = GetParam();
        cfg.mode = mode;
        const auto rep = replay_sharded(
            cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops),
            cfg);
        EXPECT_EQ(rep.stats, seq);
        EXPECT_EQ(rep.shards, GetParam());
        EXPECT_EQ(cache.size(), seq_cache.size());
        expect_same_contents(seq_cache, cache);
    }
}

TEST_P(ReplayEquivalence, YcsbTraceMatchesSequential) {
    const auto ops = ycsb_ops();
    KeyCache seq_cache(2048, 0xF1);
    const auto seq = replay_sequential(
        seq_cache,
        std::span<const ReplayOp<std::uint64_t, std::uint64_t>>(ops));

    for (const Mode mode : {Mode::kInline, Mode::kThreaded}) {
        KeyCache cache(2048, 0xF1);
        ShardedConfig cfg;
        cfg.shards = GetParam();
        cfg.mode = mode;
        const auto rep = replay_sharded(
            cache,
            std::span<const ReplayOp<std::uint64_t, std::uint64_t>>(ops),
            cfg);
        EXPECT_EQ(rep.stats, seq);
        expect_same_contents(seq_cache, cache);
    }
}

TEST_P(ReplayEquivalence, DeterministicAcrossRuns) {
    const auto ops = zipf_ops();
    ShardedConfig cfg;
    cfg.shards = GetParam();
    cfg.mode = Mode::kThreaded;

    FlowCache a(1024, 0xAB);
    FlowCache b(1024, 0xAB);
    const auto ra = replay_sharded(
        a, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops), cfg);
    const auto rb = replay_sharded(
        b, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops), cfg);
    EXPECT_EQ(ra.stats, rb.stats);
    expect_same_contents(a, b);
}

INSTANTIATE_TEST_SUITE_P(Shards, ReplayEquivalence,
                         ::testing::Values(1, 2, 8));

/// Cross-layout: a slab cache replayed (sequentially or sharded) must match
/// an AoS reference cache replayed sequentially — same stats, same final
/// contents — on both trace families.
class CrossLayoutEquivalence : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(CrossLayoutEquivalence, ZipfSoaMatchesAosReference) {
    const auto ops = zipf_ops();
    AosFlowCache aos(4096, 0xE1);
    const auto ref = replay_sequential(
        aos, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops));

    FlowCache soa_seq(4096, 0xE1);
    EXPECT_EQ(replay_sequential(
                  soa_seq,
                  std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops)),
              ref);
    expect_same_contents(aos, soa_seq);

    for (const Mode mode : {Mode::kInline, Mode::kThreaded}) {
        FlowCache soa(4096, 0xE1);
        ShardedConfig cfg;
        cfg.shards = GetParam();
        cfg.mode = mode;
        const auto rep = replay_sharded(
            soa, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops), cfg);
        EXPECT_EQ(rep.stats, ref);
        expect_same_contents(aos, soa);
    }
}

TEST_P(CrossLayoutEquivalence, YcsbSoaMatchesAosReference) {
    const auto ops = ycsb_ops();
    AosKeyCache aos(2048, 0xF1);
    const auto ref = replay_sequential(
        aos, std::span<const ReplayOp<std::uint64_t, std::uint64_t>>(ops));

    for (const Mode mode : {Mode::kInline, Mode::kThreaded}) {
        KeyCache soa(2048, 0xF1);
        ShardedConfig cfg;
        cfg.shards = GetParam();
        cfg.mode = mode;
        const auto rep = replay_sharded(
            soa, std::span<const ReplayOp<std::uint64_t, std::uint64_t>>(ops),
            cfg);
        EXPECT_EQ(rep.stats, ref);
        expect_same_contents(aos, soa);
    }
}

/// First-touch: a defer_init cache whose slab ranges are faulted in by the
/// threaded workers must replay to the same stats and contents as an eager
/// one.
TEST_P(CrossLayoutEquivalence, DeferredFirstTouchMatchesEager) {
    const auto ops = zipf_ops();
    FlowCache eager(1024, 0x1F7);
    const auto ref = replay_sequential(
        eager, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops));

    FlowCache deferred(1024, 0x1F7, core::defer_init);
    EXPECT_FALSE(deferred.materialized());
    ShardedConfig cfg;
    cfg.shards = GetParam();
    cfg.mode = Mode::kThreaded;
    const auto rep = replay_sharded(
        deferred, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops),
        cfg);
    EXPECT_TRUE(rep.threaded);
    EXPECT_TRUE(deferred.materialized());
    EXPECT_EQ(rep.stats, ref);
    expect_same_contents(eager, deferred);
}

/// The inline fallback must materialize a deferred cache on the calling
/// thread before processing.
TEST(ReplayFirstTouch, InlineModeMaterializesDeferredCache) {
    const auto ops = zipf_ops();
    FlowCache eager(512, 0x2F8);
    const auto ref = replay_sequential(
        eager, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops));

    FlowCache deferred(512, 0x2F8, core::defer_init);
    ShardedConfig cfg;
    cfg.mode = Mode::kInline;
    const auto rep = replay_sharded(
        deferred, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops),
        cfg);
    EXPECT_TRUE(deferred.materialized());
    EXPECT_EQ(rep.stats, ref);
    expect_same_contents(eager, deferred);
}

INSTANTIATE_TEST_SUITE_P(Shards, CrossLayoutEquivalence,
                         ::testing::Values(1, 2, 8));

TEST(Replay, StatsAreConsistent) {
    const auto ops = zipf_ops();
    FlowCache cache(4096, 0xE1);
    const auto s = replay_sequential(
        cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops));
    EXPECT_EQ(s.ops, ops.size());
    EXPECT_EQ(s.hits + s.misses, s.ops);
    EXPECT_LE(s.evictions, s.misses);
    // Everything still cached arrived via a miss that did not evict.
    EXPECT_EQ(cache.size(), s.misses - s.evictions);
    EXPECT_GT(s.hits, 0u);
    EXPECT_GT(s.evictions, 0u);
}

TEST(Replay, EmptyOpsYieldZeroStats) {
    FlowCache cache(64, 1);
    const std::vector<ReplayOp<FlowKey, std::uint32_t>> none;
    const auto seq = replay_sequential(
        cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(none));
    EXPECT_EQ(seq, ReplayStats{});
    const auto rep = replay_sharded(
        cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(none));
    EXPECT_EQ(rep.stats, ReplayStats{});
}

TEST(Replay, ShardCountClampsToUnits) {
    FlowCache cache(2, 5);
    const auto ops = zipf_ops();
    ShardedConfig cfg;
    cfg.shards = 16;  // only 2 units exist
    cfg.mode = Mode::kThreaded;
    const auto rep = replay_sharded(
        cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops), cfg);
    EXPECT_EQ(rep.shards, 2u);
    FlowCache seq_cache(2, 5);
    EXPECT_EQ(rep.stats,
              replay_sequential(
                  seq_cache,
                  std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops)));
}

/// Concurrency sanity: hammer the threaded engine with more workers than
/// cores and tiny batches (maximal queue churn). Under -fsanitize=thread
/// (P4LRU_SANITIZE=thread) this is the race detector's target.
TEST(ReplayConcurrency, ThreadedSmokeUnderChurn) {
    const auto ops = zipf_ops();
    ReplayStats first{};
    for (int round = 0; round < 3; ++round) {
        FlowCache cache(512, 0x5EED);
        ShardedConfig cfg;
        cfg.shards = 8;
        cfg.batch_ops = 16;     // many small batches
        cfg.queue_batches = 4;  // force producer backpressure
        cfg.mode = Mode::kThreaded;
        const auto rep = replay_sharded(
            cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops),
            cfg);
        if (round == 0) {
            first = rep.stats;
        } else {
            EXPECT_EQ(rep.stats, first);
        }
    }
}

}  // namespace
}  // namespace p4lru::replay
