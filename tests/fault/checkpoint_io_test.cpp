// On-disk checkpoint format hardening (mirrors trace_io_test): round-trip
// fidelity for both checkpoint kinds, an exhaustive all-prefix truncation
// sweep, count-field corruption that must not drive allocations, and the
// cross-layout rejection the new layout tag exists for — a checkpoint
// written from one storage layout must refuse to resume into the other
// even when it reaches the cache through a byte-faithful disk round-trip.
#include "p4lru/replay/checkpoint_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <vector>

#include "p4lru/core/p4lru.hpp"
#include "p4lru/replay/checkpoint.hpp"
#include "p4lru/trace/trace_gen.hpp"
#include "../test_util.hpp"

namespace p4lru::replay {
namespace {

using FlowCache =
    core::ParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                        std::uint32_t>;
using AosFlowCache =
    core::AosParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                           std::uint32_t>;
using Ops = std::span<const ReplayOp<FlowKey, std::uint32_t>>;

std::vector<ReplayOp<FlowKey, std::uint32_t>> small_ops() {
    trace::TraceConfig cfg;
    cfg.seed = 21;
    cfg.total_packets = 20'000;
    return ops_from_packets(trace::generate_trace(cfg));
}

class CheckpointIoTest : public ::testing::Test {
  protected:
    void SetUp() override { path_ = dir_.file("ckpt.bin"); }

    /// A mid-run sharded checkpoint with non-trivial telemetry and several
    /// shard slices, over a small cache so the sweep stays fast.
    ShardedCheckpoint sample_checkpoint() {
        const auto ops = small_ops();
        FlowCache cache(64, 0x9D);
        ShardedConfig cfg;
        cfg.shards = 3;
        cfg.batch_ops = 128;
        cfg.mode = Mode::kThreaded;
        std::vector<ShardedCheckpoint> cps;
        (void)replay_sharded_checkpointed(
            cache, Ops(ops), cfg, /*every_batches=*/24,
            [&](ShardedCheckpoint&& cp) { cps.push_back(std::move(cp)); });
        EXPECT_FALSE(cps.empty());
        return cps.front();
    }

    testutil::ScopedTempDir dir_{"p4lru_ckpt_io"};
    std::string path_;
};

void expect_equal(const ShardedCheckpoint& a, const ShardedCheckpoint& b) {
    EXPECT_EQ(a.base.cursor, b.base.cursor);
    EXPECT_EQ(a.base.stats, b.base.stats);
    EXPECT_EQ(a.base.unit_count, b.base.unit_count);
    EXPECT_EQ(a.base.layout_id, b.base.layout_id);
    EXPECT_EQ(a.base.plane_fingerprint, b.base.plane_fingerprint);
    EXPECT_EQ(a.base.planes, b.base.planes);
    EXPECT_EQ(a.shard_stats, b.shard_stats);
    EXPECT_EQ(a.delivered_batches, b.delivered_batches);
    EXPECT_EQ(a.backpressure_waits, b.backpressure_waits);
    EXPECT_EQ(a.park_wait_us, b.park_wait_us);
    EXPECT_EQ(a.drained_inline, b.drained_inline);
    EXPECT_EQ(a.abandoned_workers, b.abandoned_workers);
    EXPECT_EQ(a.scrub, b.scrub);
}

TEST_F(CheckpointIoTest, ShardedRoundTripPreservesEveryField) {
    const auto cp = sample_checkpoint();
    ASSERT_TRUE(write_checkpoint(path_, cp).is_ok());
    const auto rd = read_checkpoint_checked(path_);
    ASSERT_TRUE(rd.is_ok()) << rd.status().to_string();
    expect_equal(cp, rd.value());
}

TEST_F(CheckpointIoTest, SequentialCheckpointRoundTripsThroughSameReader) {
    const auto ops = small_ops();
    FlowCache cache(64, 0x9D);
    ReplayStats s = replay_sequential(cache, Ops(ops).first(10'000));
    const auto cp = take_checkpoint(cache, 10'000, s);
    ASSERT_TRUE(write_checkpoint(path_, cp).is_ok());
    const auto rd = read_checkpoint_checked(path_);
    ASSERT_TRUE(rd.is_ok()) << rd.status().to_string();
    EXPECT_TRUE(rd.value().shard_stats.empty());
    EXPECT_EQ(rd.value().base.planes, cp.planes);

    FlowCache resumed(64, 0x9D);
    const auto res = resume_sequential(resumed, Ops(ops), rd.value().base);
    ASSERT_TRUE(res.is_ok()) << res.status().to_string();
    FlowCache ref(64, 0x9D);
    EXPECT_EQ(res.value(), replay_sequential(ref, Ops(ops)));
}

TEST_F(CheckpointIoTest, MissingFileIsIoErrorWithPathAndErrno) {
    const auto rd = read_checkpoint_checked("/nonexistent/dir/x.ckpt");
    ASSERT_FALSE(rd.is_ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::kIoError);
    // The errno satellite: the message must carry the offending path and
    // the OS-level cause, not just "cannot open".
    EXPECT_NE(rd.status().message().find("/nonexistent/dir/x.ckpt"),
              std::string::npos)
        << rd.status().to_string();
    EXPECT_NE(rd.status().message().find("errno"), std::string::npos)
        << rd.status().to_string();
}

TEST_F(CheckpointIoTest, BadMagicRejectedAtOffsetZero) {
    std::ofstream os(path_, std::ios::binary);
    os << std::string(200, 'x');
    os.close();
    const auto rd = read_checkpoint_checked(path_);
    ASSERT_FALSE(rd.is_ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::kCorrupt);
    EXPECT_EQ(rd.status().offset(), 0u);
}

TEST_F(CheckpointIoTest, WrongVersionRejected) {
    ASSERT_TRUE(write_checkpoint(path_, sample_checkpoint()).is_ok());
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    const std::uint32_t bad = 99;
    f.write(reinterpret_cast<const char*>(&bad), 4);
    f.close();
    const auto rd = read_checkpoint_checked(path_);
    ASSERT_FALSE(rd.is_ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::kCorrupt);
    EXPECT_EQ(rd.status().offset(), 8u);
}

TEST_F(CheckpointIoTest, InsaneShardCountRejectedBeforeAllocating) {
    ASSERT_TRUE(write_checkpoint(path_, sample_checkpoint()).is_ok());
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(136);  // shard count field
    const std::uint64_t bad = ~std::uint64_t{0} / 2;
    f.write(reinterpret_cast<const char*>(&bad), 8);
    f.close();
    const auto rd = read_checkpoint_checked(path_);
    ASSERT_FALSE(rd.is_ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::kCorrupt);
    EXPECT_EQ(rd.status().offset(), 136u);
}

TEST_F(CheckpointIoTest, OversizedPlanePromiseRejected) {
    ASSERT_TRUE(write_checkpoint(path_, sample_checkpoint()).is_ok());
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(144);  // plane size field
    const std::uint64_t bad = ~std::uint64_t{0} - 64;
    f.write(reinterpret_cast<const char*>(&bad), 8);
    f.close();
    const auto rd = read_checkpoint_checked(path_);
    ASSERT_FALSE(rd.is_ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::kTruncated);
}

TEST_F(CheckpointIoTest, TrailingGarbageRejected) {
    ASSERT_TRUE(write_checkpoint(path_, sample_checkpoint()).is_ok());
    const auto full = std::filesystem::file_size(path_);
    std::ofstream os(path_, std::ios::binary | std::ios::app);
    os << "junk";
    os.close();
    const auto rd = read_checkpoint_checked(path_);
    ASSERT_FALSE(rd.is_ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::kCorrupt);
    EXPECT_EQ(rd.status().offset(), full);
}

/// Mirror of trace_io_test's sweep: every strict prefix of a valid
/// checkpoint file must be rejected with a typed error whose offset (when
/// present) points inside the truncated file.  The sample cache is small
/// (64 units) so the sweep covers header, shard slices and plane bytes in
/// a few thousand iterations.
TEST_F(CheckpointIoTest, EveryTruncationPrefixIsRejectedWithOffset) {
    const auto cp = sample_checkpoint();
    ASSERT_TRUE(write_checkpoint(path_, cp).is_ok());
    const auto full = std::filesystem::file_size(path_);

    for (std::uintmax_t cut = 0; cut < full; ++cut) {
        ASSERT_TRUE(write_checkpoint(path_, cp).is_ok());  // restore
        std::filesystem::resize_file(path_, cut);
        const auto r = read_checkpoint_checked(path_);
        ASSERT_FALSE(r.is_ok()) << "prefix of " << cut << " bytes parsed";
        const auto code = r.status().code();
        EXPECT_TRUE(code == ErrorCode::kCorrupt ||
                    code == ErrorCode::kTruncated)
            << "prefix " << cut << ": " << r.status().to_string();
        if (r.status().has_offset()) {
            EXPECT_LE(r.status().offset(), cut)
                << "offset must point inside the truncated file";
        }
    }
}

/// The layout-tag satellite, end to end through disk: a checkpoint taken
/// from the AoS layout must be rejected by a SoA cache (and vice versa)
/// with kInvalidState — before any plane byte is interpreted — even though
/// the file itself is perfectly well-formed.
TEST_F(CheckpointIoTest, CrossLayoutResumeRejectedAfterDiskRoundTrip) {
    const auto ops = small_ops();
    AosFlowCache aos(64, 0x9D);
    ReplayStats s = replay_sequential(aos, Ops(ops).first(5'000));
    ASSERT_TRUE(
        write_checkpoint(path_, take_checkpoint(aos, 5'000, s)).is_ok());
    const auto rd = read_checkpoint_checked(path_);
    ASSERT_TRUE(rd.is_ok()) << rd.status().to_string();

    FlowCache soa(64, 0x9D);
    const auto res = resume_sequential(soa, Ops(ops), rd.value().base);
    ASSERT_FALSE(res.is_ok()) << "SoA cache accepted an AoS checkpoint";
    EXPECT_EQ(res.status().code(), ErrorCode::kInvalidState);

    const auto sharded = resume_sharded(soa, Ops(ops), rd.value());
    ASSERT_FALSE(sharded.is_ok());
    EXPECT_EQ(sharded.status().code(), ErrorCode::kInvalidState);

    // Same-layout restore of the identical file stays accepted.
    AosFlowCache back(64, 0x9D);
    const auto ok = resume_sequential(back, Ops(ops), rd.value().base);
    EXPECT_TRUE(ok.is_ok()) << ok.status().to_string();
}

/// Backward compatibility: a v1 file (same layout, no seal footer) — what
/// every pre-durability PR wrote — must still parse, field for field.
TEST_F(CheckpointIoTest, LegacyV1FileWithoutSealStillAccepted) {
    const auto cp = sample_checkpoint();
    const SerializedCheckpoint image = serialize_checkpoint(cp);
    std::vector<std::byte> v1(image.bytes.begin(), image.bytes.end() - 16);
    const std::uint32_t version1 = 1;
    std::memcpy(v1.data() + 8, &version1, 4);
    std::ofstream os(path_, std::ios::binary);
    os.write(reinterpret_cast<const char*>(v1.data()),
             static_cast<std::streamsize>(v1.size()));
    os.close();
    const auto rd = read_checkpoint_checked(path_);
    ASSERT_TRUE(rd.is_ok()) << rd.status().to_string();
    expect_equal(cp, rd.value());
}

/// The seal at work: one flipped byte in each section must be caught by
/// that section's CRC, with the error offset naming the section start.
/// (The exhaustive every-bit sweep lives in durable_store_test; this is
/// the targeted per-section smoke.)
TEST_F(CheckpointIoTest, FlippedByteInEachSectionCaughtBySectionCrc) {
    const auto cp = sample_checkpoint();
    const SerializedCheckpoint image = serialize_checkpoint(cp);
    ASSERT_EQ(image.section_ends.size(), 4u);
    const std::uint64_t slices_begin = image.section_ends[0];   // 152
    const std::uint64_t planes_begin = image.section_ends[1];
    const std::uint64_t footer_begin = image.section_ends[2];
    struct Case {
        std::uint64_t flip_at;
        std::uint64_t expect_offset;
    };
    const Case cases[] = {
        {slices_begin + 3, slices_begin},  // shard-slice byte
        {planes_begin + 7, planes_begin},  // plane byte
        {footer_begin + 1, footer_begin},  // a stored CRC itself
    };
    for (const auto& c : cases) {
        std::vector<std::byte> bad = image.bytes;
        bad[static_cast<std::size_t>(c.flip_at)] ^= std::byte{0x10};
        const auto rd = parse_checkpoint(bad, "flip@" +
                                                  std::to_string(c.flip_at));
        ASSERT_FALSE(rd.is_ok()) << "flip at " << c.flip_at << " accepted";
        EXPECT_EQ(rd.status().code(), ErrorCode::kCorrupt);
        EXPECT_EQ(rd.status().offset(), c.expect_offset)
            << rd.status().to_string();
    }
}

/// Forged-but-plausible cross-layout image: even when an attacker-ish file
/// carries plane bytes of exactly the size the target layout expects, the
/// fingerprint check refuses it.
TEST_F(CheckpointIoTest, MatchingSizeButWrongFingerprintRejected) {
    FlowCache soa(64, 0x9D);
    soa.materialize();
    ReplayCheckpoint cp = take_checkpoint(soa, 0, {});
    cp.plane_fingerprint ^= 1;  // geometry lie; layout id and size intact
    ASSERT_TRUE(write_checkpoint(path_, cp).is_ok());
    const auto rd = read_checkpoint_checked(path_);
    ASSERT_TRUE(rd.is_ok());
    const auto ops = small_ops();
    FlowCache target(64, 0x9D);
    const auto res = resume_sequential(target, Ops(ops), rd.value().base);
    ASSERT_FALSE(res.is_ok());
    EXPECT_EQ(res.status().code(), ErrorCode::kInvalidState);
}

}  // namespace
}  // namespace p4lru::replay
