// Fuzz campaign + protocol tests for the durable checkpoint store
// (DESIGN.md §12, ISSUE 8 acceptance).
//
// Format hardening, over BOTH on-disk layouts (P4LRUCKP cache checkpoints
// and P4LRUTGC target checkpoints):
//   * exhaustive truncation sweep — every strict byte prefix of a sealed
//     image is rejected by the typed parser AND the format-agnostic
//     verifier, never accepted, never a crash;
//   * single-bit-flip sweep — flips in every section (header, stats
//     records, state payload, seal footer) are rejected; CRC-attributable
//     flips name the damaged section's start offset.
//
// Store protocol: atomic install / generation numbering / retention /
// newest-valid pruning immunity, the exact on-disk remains of every
// fault::CrashPoint, and the recovery ladder skipping torn + bit-flipped
// generations down to the newest valid one with a typed rejection recorded
// per skip.
#include "p4lru/replay/durable_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "p4lru/core/p4lru.hpp"
#include "p4lru/replay/checkpoint.hpp"
#include "p4lru/replay/checkpoint_io.hpp"
#include "p4lru/replay/replay.hpp"
#include "p4lru/replay/target_checkpoint.hpp"
#include "p4lru/trace/trace_gen.hpp"
#include "../test_util.hpp"

namespace p4lru::replay {
namespace {

namespace fs = std::filesystem;

using FlowCache =
    core::ParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                        std::uint32_t>;
using Ops = std::span<const ReplayOp<FlowKey, std::uint32_t>>;

// ---------------------------------------------------------------------------
// Sample images: one real mid-run cache checkpoint (small cache so the
// byte-exhaustive sweeps stay fast) and one hand-built target checkpoint
// with every field non-trivial.

const SerializedCheckpoint& ckp_image() {
    static const SerializedCheckpoint img = [] {
        trace::TraceConfig tcfg;
        tcfg.seed = 77;
        tcfg.total_packets = 4'000;
        const auto ops = ops_from_packets(trace::generate_trace(tcfg));
        FlowCache cache(16, 0x5C);
        ShardedConfig cfg;
        cfg.shards = 3;
        cfg.batch_ops = 64;
        cfg.mode = Mode::kThreaded;
        std::vector<ShardedCheckpoint> cps;
        (void)replay_sharded_checkpointed(
            cache, Ops(ops), cfg, /*every_batches=*/8,
            [&](ShardedCheckpoint&& cp) { cps.push_back(std::move(cp)); });
        EXPECT_FALSE(cps.empty());
        return serialize_checkpoint(cps.front());
    }();
    return img;
}

TargetCheckpoint<ReplayStats> sample_tgc() {
    TargetCheckpoint<ReplayStats> cp;
    cp.cursor = 4'096;
    cp.stats = {4'096, 2'000, 2'096, 37};
    cp.unit_count = 16;
    cp.state_id = 7;
    cp.state_fingerprint = 0x1122334455667788ULL;
    cp.shard_stats = {{2'000, 900, 1'100, 20}, {2'096, 1'100, 996, 17}};
    cp.delivered_batches = 99;
    cp.backpressure_waits = 3;
    cp.park_wait_us = 512;
    cp.drained_inline = 1;
    cp.abandoned_workers = 0;
    cp.scrub = {160, 2, 2};
    cp.state.resize(600);
    std::uint64_t x = 0x9E3779B97F4A7C15ULL;  // deterministic fill
    for (auto& b : cp.state) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        b = static_cast<std::byte>(x >> 56);
    }
    return cp;
}

const SerializedCheckpoint& tgc_image() {
    static const SerializedCheckpoint img =
        serialize_target_checkpoint(sample_tgc());
    return img;
}

/// Parse outcome of either typed reader on raw bytes.
enum class Format { kCkp, kTgc };

Status typed_parse(Format f, const std::vector<std::byte>& bytes) {
    if (f == Format::kCkp) {
        const auto r = parse_checkpoint(bytes, "fuzz");
        return r.is_ok() ? Status::ok() : r.status();
    }
    const auto r = parse_target_checkpoint<ReplayStats>(bytes, "fuzz");
    return r.is_ok() ? Status::ok() : r.status();
}

struct FormatCase {
    Format format;
    const SerializedCheckpoint* image;
    const char* name;
};

std::vector<FormatCase> format_cases() {
    return {{Format::kCkp, &ckp_image(), "P4LRUCKP"},
            {Format::kTgc, &tgc_image(), "P4LRUTGC"}};
}

// ---------------------------------------------------------------------------
// Fuzz campaign, leg 1: every strict prefix is rejected.

TEST(DurableFuzz, EveryTruncationPrefixRejectedBothFormats) {
    for (const auto& fc : format_cases()) {
        const auto& img = *fc.image;
        ASSERT_GE(img.bytes.size(), 100u) << fc.name;
        // Full image parses and verifies; every strict prefix must not.
        ASSERT_TRUE(typed_parse(fc.format, img.bytes).is_ok()) << fc.name;
        ASSERT_TRUE(verify_checkpoint_image(img.bytes, fc.name).is_ok());
        for (std::size_t cut = 0; cut < img.bytes.size(); ++cut) {
            const std::vector<std::byte> prefix(img.bytes.begin(),
                                                img.bytes.begin() + cut);
            const Status st = typed_parse(fc.format, prefix);
            ASSERT_FALSE(st.is_ok())
                << fc.name << ": prefix of " << cut << " bytes parsed";
            ASSERT_TRUE(st.code() == ErrorCode::kCorrupt ||
                        st.code() == ErrorCode::kTruncated)
                << fc.name << " prefix " << cut << ": " << st.to_string();
            ASSERT_FALSE(verify_checkpoint_image(prefix, fc.name).is_ok())
                << fc.name << ": verifier accepted prefix of " << cut;
        }
    }
}

// ---------------------------------------------------------------------------
// Fuzz campaign, leg 2: single-bit flips in every section are rejected.
// Small sections are flipped exhaustively (every bit); the state payload
// gets a seeded random sample.  Where the damage is CRC-attributable (the
// flip survives the structural checks), the reported offset must name the
// damaged section's start.

TEST(DurableFuzz, SingleBitFlipInEverySectionRejectedBothFormats) {
    std::mt19937_64 rng(0xF1A9u);
    for (const auto& fc : format_cases()) {
        const auto& img = *fc.image;
        ASSERT_EQ(img.section_ends.size(), 4u) << fc.name;
        std::uint64_t begin = 0;
        for (std::size_t sec = 0; sec < img.section_ends.size(); ++sec) {
            const std::uint64_t end = img.section_ends[sec];
            const std::uint64_t len = end - begin;
            ASSERT_GT(len, 0u) << fc.name << " section " << sec;
            // (position, bit) pairs to flip in this section.
            std::vector<std::pair<std::uint64_t, unsigned>> flips;
            if (len <= 256) {
                for (std::uint64_t p = begin; p < end; ++p) {
                    for (unsigned bit = 0; bit < 8; ++bit) {
                        flips.emplace_back(p, bit);
                    }
                }
            } else {
                for (int i = 0; i < 256; ++i) {
                    flips.emplace_back(begin + rng() % len,
                                       static_cast<unsigned>(rng() % 8));
                }
            }
            for (const auto& [pos, bit] : flips) {
                std::vector<std::byte> dam = img.bytes;
                dam[pos] ^= static_cast<std::byte>(1u << bit);
                const Status st = typed_parse(fc.format, dam);
                ASSERT_FALSE(st.is_ok())
                    << fc.name << ": flip of bit " << bit << " at byte "
                    << pos << " (section " << sec << ") accepted";
                ASSERT_FALSE(verify_checkpoint_image(dam, fc.name).is_ok())
                    << fc.name << ": verifier accepted flip at " << pos;
                // CRC-attributed mismatches name the damaged section.
                if (st.to_string().find("CRC mismatch") !=
                    std::string::npos) {
                    ASSERT_TRUE(st.has_offset()) << st.to_string();
                    // The seal footer's own CRCs are reported at the
                    // footer; any body CRC points at its section start.
                    ASSERT_TRUE(st.offset() == begin ||
                                st.offset() == img.section_ends[2])
                        << fc.name << ": flip at " << pos << " in section "
                        << sec << " reported at " << st.offset() << ": "
                        << st.to_string();
                }
            }
            begin = end;
        }
    }
}

// ---------------------------------------------------------------------------
// Store protocol.

std::vector<std::uint64_t> seqs(const std::vector<GenerationInfo>& gens) {
    std::vector<std::uint64_t> out;
    for (const auto& g : gens) out.push_back(g.seq);
    return out;
}

TEST(DurableStoreTest, InstallNumbersGenerationsAndListsAscending) {
    testutil::ScopedTempDir tmp{"p4lru_store"};
    DurableStore store(tmp.file("store"), {.retain = 10, .sync = false});
    EXPECT_TRUE(store.list().empty()) << "missing dir must list empty";
    for (std::uint64_t want = 1; want <= 3; ++want) {
        const auto gen = store.install(tgc_image());
        ASSERT_TRUE(gen.is_ok()) << gen.status().to_string();
        EXPECT_EQ(gen.value().seq, want);
        EXPECT_TRUE(fs::exists(gen.value().path));
    }
    EXPECT_EQ(seqs(store.list()), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(DurableStoreTest, ListIgnoresTempAndForeignFiles) {
    testutil::ScopedTempDir tmp{"p4lru_store"};
    DurableStore store(tmp.file("store"), {.retain = 10, .sync = false});
    ASSERT_TRUE(store.install(tgc_image()).is_ok());
    const auto noise = {"gen-000099.ckpt.tmp", "gen-junk.ckpt", "README",
                        "gen-.ckpt"};
    for (const auto* name : noise) {
        std::ofstream(fs::path(store.dir()) / name) << "noise";
    }
    EXPECT_EQ(seqs(store.list()), (std::vector<std::uint64_t>{1}))
        << "temp and foreign names must be invisible";
}

TEST(DurableStoreTest, RetentionKeepsNewestK) {
    testutil::ScopedTempDir tmp{"p4lru_store"};
    DurableStore store(tmp.file("store"), {.retain = 3, .sync = false});
    for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(store.install(tgc_image()).is_ok());
    }
    EXPECT_EQ(seqs(store.list()), (std::vector<std::uint64_t>{4, 5, 6}));
}

TEST(DurableStoreTest, PruneNeverDeletesNewestValidGeneration) {
    testutil::ScopedTempDir tmp{"p4lru_store"};
    DurableStore store(tmp.file("store"), {.retain = 1, .sync = false});
    // One valid generation, then a burst of torn installs above it.
    ASSERT_TRUE(store.install(tgc_image()).is_ok());
    for (std::uint64_t ord = 0; ord < 3; ++ord) {
        const fault::CrashEvent crash{ord, fault::CrashPoint::kTornInstall,
                                      /*arg=*/ord % 3};
        const auto out = store.install_with_crash(tgc_image(), &crash);
        ASSERT_TRUE(out.is_ok()) << out.status().to_string();
        EXPECT_TRUE(out.value().crashed);
    }
    ASSERT_TRUE(store.prune().is_ok());
    const auto after = seqs(store.list());
    // retain=1 keeps only the newest (torn) file — but generation 1, the
    // newest that verifies, must have been spared.
    EXPECT_EQ(after, (std::vector<std::uint64_t>{1, 4}));
    const auto bytes = read_file_bytes(store.list().front().path);
    ASSERT_TRUE(bytes.is_ok());
    EXPECT_TRUE(verify_checkpoint_image(bytes.value(), "kept").is_ok());
}

TEST(DurableStoreTest, CrashPointsLeaveExactlyTheExpectedRemains) {
    using fault::CrashPoint;
    const auto& img = tgc_image();

    const auto run = [&](CrashPoint point, std::uint64_t arg) {
        testutil::ScopedTempDir tmp{"p4lru_store"};
        DurableStore store(tmp.file("store"), {.retain = 2, .sync = false});
        EXPECT_TRUE(store.install(img).is_ok());  // gen 1: prior state
        const fault::CrashEvent crash{0, point, arg};
        const auto out = store.install_with_crash(img, &crash);
        EXPECT_TRUE(out.is_ok()) << out.status().to_string();
        EXPECT_TRUE(out.value().crashed);
        std::size_t tmp_files = 0;
        for (const auto& e : fs::directory_iterator(store.dir())) {
            if (e.path().string().ends_with(".tmp")) ++tmp_files;
        }
        struct Remains {
            std::vector<std::uint64_t> gens;
            std::size_t tmp_files;
            bool installed;
        };
        return Remains{seqs(store.list()), tmp_files,
                       out.value().installed};
    };

    {  // Nothing written at all.
        const auto r = run(CrashPoint::kBeforeWrite, 0);
        EXPECT_EQ(r.gens, (std::vector<std::uint64_t>{1}));
        EXPECT_EQ(r.tmp_files, 0u);
        EXPECT_FALSE(r.installed);
    }
    {  // Torn temp: invisible to list(), temp remains on disk.
        const auto r = run(CrashPoint::kTornTemp, 1);
        EXPECT_EQ(r.gens, (std::vector<std::uint64_t>{1}));
        EXPECT_EQ(r.tmp_files, 1u);
        EXPECT_FALSE(r.installed);
    }
    {  // Torn install: a damaged file AT the final name — listed, but it
       // must fail verification (the recovery ladder will skip it).
        const auto r = run(CrashPoint::kTornInstall, 2);
        EXPECT_EQ(r.gens, (std::vector<std::uint64_t>{1, 2}));
        EXPECT_FALSE(r.installed);
        testutil::ScopedTempDir probe{"p4lru_store"};
        DurableStore store(probe.file("s"), {.retain = 2, .sync = false});
        ASSERT_TRUE(store.install(img).is_ok());
        const fault::CrashEvent crash{0, CrashPoint::kTornInstall, 2};
        const auto out = store.install_with_crash(img, &crash);
        ASSERT_TRUE(out.is_ok());
        const auto bytes = read_file_bytes(store.list().back().path);
        ASSERT_TRUE(bytes.is_ok());
        EXPECT_FALSE(
            verify_checkpoint_image(bytes.value(), "torn").is_ok());
    }
    {  // Crash between the synced temp and the rename: no new generation.
        const auto r = run(CrashPoint::kBeforeRename, 0);
        EXPECT_EQ(r.gens, (std::vector<std::uint64_t>{1}));
        EXPECT_EQ(r.tmp_files, 1u);
        EXPECT_FALSE(r.installed);
    }
    {  // Crash after the install: generation landed, prune did not run.
        const auto r = run(CrashPoint::kAfterInstall, 0);
        EXPECT_EQ(r.gens, (std::vector<std::uint64_t>{1, 2}));
        EXPECT_EQ(r.tmp_files, 0u);
        EXPECT_TRUE(r.installed);
    }
    {  // Crash between epochs: a complete, pruned install.
        const auto r = run(CrashPoint::kBetweenEpochs, 0);
        EXPECT_EQ(r.gens, (std::vector<std::uint64_t>{1, 2}));
        EXPECT_EQ(r.tmp_files, 0u);
        EXPECT_TRUE(r.installed);
    }
}

TEST(DurableStoreTest, RecoveryLadderSkipsDamageDownToNewestValid) {
    testutil::ScopedTempDir tmp{"p4lru_store"};
    DurableStore store(tmp.file("store"), {.retain = 10, .sync = false});
    const auto want = sample_tgc();

    // gens 1..2 valid; gen 3 torn at a section boundary; gen 4 bit-flipped.
    ASSERT_TRUE(store.install(tgc_image()).is_ok());
    ASSERT_TRUE(store.install(tgc_image()).is_ok());
    const fault::CrashEvent torn{0, fault::CrashPoint::kTornInstall, 2};
    ASSERT_TRUE(store.install_with_crash(tgc_image(), &torn).is_ok());
    {
        SerializedCheckpoint flipped = tgc_image();
        flipped.bytes[flipped.section_ends[1] + 7] ^= std::byte{0x10};
        ASSERT_TRUE(store.install(flipped).is_ok());
    }
    ASSERT_EQ(store.list().size(), 4u);

    const auto rec = store.recover_newest(
        [](const std::vector<std::byte>& image, const std::string& origin) {
            return parse_target_checkpoint<ReplayStats>(image, origin);
        });
    ASSERT_TRUE(rec.found) << "ladder must land on generation 2";
    EXPECT_EQ(rec.gen.seq, 2u);
    ASSERT_EQ(rec.rejected.size(), 2u) << "both damaged gens recorded";
    EXPECT_EQ(rec.rejected[0].seq, 4u);  // newest first
    EXPECT_EQ(rec.rejected[1].seq, 3u);
    for (const auto& r : rec.rejected) {
        EXPECT_FALSE(r.status.is_ok());
        EXPECT_TRUE(r.status.code() == ErrorCode::kCorrupt ||
                    r.status.code() == ErrorCode::kTruncated)
            << r.status.to_string();
    }
    // The recovered checkpoint is bit-identical to what was installed.
    EXPECT_EQ(rec.checkpoint.cursor, want.cursor);
    EXPECT_EQ(rec.checkpoint.stats, want.stats);
    EXPECT_EQ(rec.checkpoint.shard_stats, want.shard_stats);
    EXPECT_EQ(rec.checkpoint.state, want.state);
}

TEST(DurableStoreTest, EmptyStoreIsAColdStartNotAnError) {
    testutil::ScopedTempDir tmp{"p4lru_store"};
    const DurableStore store(tmp.file("never_created"));
    const auto rec = store.recover_newest(
        [](const std::vector<std::byte>& image, const std::string& origin) {
            return parse_target_checkpoint<ReplayStats>(image, origin);
        });
    EXPECT_FALSE(rec.found);
    EXPECT_TRUE(rec.rejected.empty());
}

TEST(DurableStoreTest, IoFailuresCarryPathAndErrno) {
    const auto rd = read_file_bytes("/nonexistent/dir/gen-000001.ckpt");
    ASSERT_FALSE(rd.is_ok());
    EXPECT_EQ(rd.status().code(), ErrorCode::kIoError);
    EXPECT_NE(rd.status().message().find("/nonexistent/dir"),
              std::string::npos);
    EXPECT_NE(rd.status().message().find("errno"), std::string::npos);

    const auto wr = atomic_write_file("/nonexistent/dir/x.ckpt",
                                      tgc_image().bytes, /*sync=*/false);
    ASSERT_FALSE(wr.is_ok());
    EXPECT_EQ(wr.code(), ErrorCode::kIoError);
    EXPECT_NE(wr.message().find("errno"), std::string::npos);
}

TEST(DurableStoreTest, DescribeReportsBothFormatsAndLegacyFiles) {
    {
        const auto info =
            describe_checkpoint_image(ckp_image().bytes, "ckp");
        ASSERT_TRUE(info.is_ok()) << info.status().to_string();
        EXPECT_EQ(info.value().format, "P4LRUCKP");
        EXPECT_TRUE(info.value().sealed);
        EXPECT_TRUE(info.value().verdict.is_ok());
        ASSERT_EQ(info.value().sections.size(), 4u);
        for (const auto& s : info.value().sections) EXPECT_TRUE(s.ok);
    }
    {
        const auto info =
            describe_checkpoint_image(tgc_image().bytes, "tgc");
        ASSERT_TRUE(info.is_ok()) << info.status().to_string();
        EXPECT_EQ(info.value().format, "P4LRUTGC");
        EXPECT_TRUE(info.value().sealed);
        EXPECT_EQ(info.value().cursor, sample_tgc().cursor);
        EXPECT_EQ(info.value().shard_count, 2u);
        EXPECT_TRUE(info.value().verdict.is_ok());
    }
    {
        // A v1 file: same image without the seal, version patched to 1.
        std::vector<std::byte> legacy = tgc_image().bytes;
        legacy.resize(legacy.size() - 16);
        legacy[8] = std::byte{1};
        const auto info = describe_checkpoint_image(legacy, "legacy");
        ASSERT_TRUE(info.is_ok()) << info.status().to_string();
        EXPECT_EQ(info.value().version, 1u);
        EXPECT_FALSE(info.value().sealed);
        EXPECT_TRUE(info.value().sections.empty());
        EXPECT_TRUE(info.value().verdict.is_ok());
        // ...and the typed reader still accepts it.
        const auto cp = parse_target_checkpoint<ReplayStats>(legacy, "v1");
        ASSERT_TRUE(cp.is_ok()) << cp.status().to_string();
        EXPECT_EQ(cp.value().stats, sample_tgc().stats);
    }
}

}  // namespace
}  // namespace p4lru::replay
