// Sharded checkpoint/resume property test (ISSUE 4 acceptance): for random
// (shard count, batch size, checkpoint cadence, kill point) over Zipf and
// YCSB traces, resuming from a disk-round-tripped ShardedCheckpoint must
// land on statistics and final plane bytes bit-identical to an
// uninterrupted replay_sequential — on both storage layouts, with the
// resume free to pick a different shard count / batch size than the
// interrupted run, and including runs whose workers were parked by faults
// or abandoned by the watchdog mid-checkpoint.
#include "p4lru/replay/checkpoint_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "p4lru/core/p4lru.hpp"
#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/replay/checkpoint.hpp"
#include "p4lru/trace/trace_gen.hpp"
#include "p4lru/trace/ycsb.hpp"
#include "../test_util.hpp"

namespace p4lru::replay {
namespace {

using FlowCache =
    core::ParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                        std::uint32_t>;
using AosFlowCache =
    core::AosParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                           std::uint32_t>;
using KeyCache =
    core::ParallelCache<core::P4lru<std::uint64_t, std::uint64_t, 3>,
                        std::uint64_t, std::uint64_t>;

template <typename CacheA, typename CacheB>
void expect_same_contents(const CacheA& a, const CacheB& b) {
    ASSERT_EQ(a.unit_count(), b.unit_count());
    for (std::size_t u = 0; u < a.unit_count(); ++u) {
        const auto& ua = a.unit(u);
        const auto& ub = b.unit(u);
        ASSERT_EQ(ua.size(), ub.size()) << "unit " << u;
        for (std::size_t i = 1; i <= ua.size(); ++i) {
            EXPECT_EQ(ua.key_at(i), ub.key_at(i)) << "unit " << u;
            EXPECT_EQ(ua.value_at(i), ub.value_at(i)) << "unit " << u;
        }
    }
}

std::vector<ReplayOp<FlowKey, std::uint32_t>> zipf_ops() {
    trace::TraceConfig cfg;
    cfg.seed = 31;
    cfg.total_packets = 60'000;
    cfg.segments = 4;
    return ops_from_packets(trace::generate_trace(cfg));
}

std::vector<ReplayOp<std::uint64_t, std::uint64_t>> ycsb_ops() {
    trace::YcsbConfig cfg;
    cfg.seed = 41;
    cfg.items = 100'000;
    cfg.zipf_alpha = 0.9;
    trace::YcsbWorkload wl(cfg);
    std::vector<ReplayOp<std::uint64_t, std::uint64_t>> ops;
    ops.reserve(50'000);
    for (const auto& op : wl.generate(50'000)) {
        ops.push_back({op.key, op.key * 2 + 1});
    }
    return ops;
}

/// One randomized trial: sharded replay with checkpoint emission at a
/// random cadence, kill at a random emitted checkpoint, round-trip it
/// through disk, resume on a fresh cache with freshly-randomized replay
/// geometry, and demand bit-exactness against the sequential reference.
/// `chaos` layers worker faults (a self-parking worker and a sleep long
/// enough for the watchdog) on top of the checkpointed run.
template <typename Cache, typename Key, typename Value>
void run_trial(const Cache& ref, const ReplayStats& seq,
               const std::vector<ReplayOp<Key, Value>>& ops,
               std::size_t units, std::uint32_t cache_seed,
               std::mt19937_64& rng, bool chaos) {
    using Ops = std::span<const ReplayOp<Key, Value>>;

    ShardedConfig cfg;
    cfg.shards = 2 + static_cast<std::size_t>(rng() % 5);
    cfg.batch_ops = std::size_t{32} << (rng() % 3);
    cfg.queue_batches = chaos ? 4 : 16;
    cfg.mode = Mode::kThreaded;
    if (chaos) {
        cfg.robust.push_deadline_us = 100;
        cfg.robust.stall_timeout_us = 2'000;
    }
    const std::uint64_t cadence = 1 + rng() % 8;

    fault::FaultPlan plan;
    if (chaos) {
        plan.stall_worker(static_cast<std::uint32_t>(rng() % cfg.shards),
                          rng() % 4);
        plan.delay_batch(static_cast<std::uint32_t>(rng() % cfg.shards),
                         rng() % 8, /*micros=*/20'000);
    }
    const fault::InjectedFaults faults(plan);

    std::vector<ShardedCheckpoint> cps;
    Cache first(units, cache_seed);
    const auto rep = replay_sharded_checkpointed(
        first, Ops(ops), cfg, cadence,
        [&](ShardedCheckpoint&& cp) { cps.push_back(std::move(cp)); },
        faults);
    ASSERT_EQ(rep.stats, seq) << "checkpointed run diverged";
    expect_same_contents(ref, first);
    ASSERT_FALSE(cps.empty()) << "no checkpoint emitted";
    if (chaos) {
        EXPECT_TRUE(rep.degraded()) << "chaos trial ran clean";
    }

    // Kill point: any emitted checkpoint, through the on-disk format.
    const auto& cp = cps[rng() % cps.size()];
    EXPECT_EQ(cp.base.stats.ops, cp.base.cursor)
        << "cut statistics must cover exactly the op prefix";
    testutil::ScopedTempDir tmp{"p4lru_prop_ckpt"};
    const std::string path = tmp.file("cut.ckpt");
    ASSERT_TRUE(write_checkpoint(path, cp).is_ok());
    auto rd = read_checkpoint_checked(path);
    ASSERT_TRUE(rd.is_ok()) << rd.status().to_string();

    ShardedConfig rcfg;
    rcfg.shards = 2 + static_cast<std::size_t>(rng() % 5);
    rcfg.batch_ops = std::size_t{32} << (rng() % 3);
    rcfg.mode = Mode::kThreaded;
    Cache resumed(units, cache_seed);
    const auto res = resume_sharded(resumed, Ops(ops), rd.value(), rcfg);
    ASSERT_TRUE(res.is_ok()) << res.status().to_string();
    EXPECT_EQ(res.value().stats, seq) << "resumed run diverged";
    // Degradation telemetry carried through the kill: the resumed report
    // must include everything the interrupted run had already accumulated
    // at the cut (the resume leg can only add to it).
    EXPECT_GE(res.value().backpressure_waits, cp.backpressure_waits);
    EXPECT_GE(res.value().park_wait_us, cp.park_wait_us);
    EXPECT_GE(res.value().drained_inline, cp.drained_inline);
    EXPECT_GE(res.value().abandoned_workers, cp.abandoned_workers);
    expect_same_contents(ref, resumed);

    std::vector<std::byte> want, got;
    ref.storage().save_planes(want);
    resumed.storage().save_planes(got);
    EXPECT_EQ(want, got) << "final plane bytes differ";
}

template <typename Cache, typename Key, typename Value>
void run_property(const std::vector<ReplayOp<Key, Value>>& ops,
                  std::size_t units, std::uint32_t cache_seed,
                  std::uint64_t rng_seed, int trials, bool chaos) {
    using Ops = std::span<const ReplayOp<Key, Value>>;
    Cache ref(units, cache_seed);
    const auto seq = replay_sequential(ref, Ops(ops));
    std::mt19937_64 rng(rng_seed);
    for (int t = 0; t < trials; ++t) {
        SCOPED_TRACE("trial " + std::to_string(t));
        run_trial(ref, seq, ops, units, cache_seed, rng, chaos);
        if (::testing::Test::HasFatalFailure()) return;
    }
}

TEST(ShardedCheckpoint, DiskRoundTripResumesBitIdenticalZipfSoa) {
    run_property<FlowCache>(zipf_ops(), 1024, 0x33, 1001, 5, false);
}

TEST(ShardedCheckpoint, DiskRoundTripResumesBitIdenticalZipfAos) {
    run_property<AosFlowCache>(zipf_ops(), 1024, 0x33, 1002, 5, false);
}

TEST(ShardedCheckpoint, DiskRoundTripResumesBitIdenticalYcsb) {
    run_property<KeyCache>(ycsb_ops(), 2048, 0x44, 1003, 5, false);
}

TEST(ShardedCheckpoint, SurvivesParkedAndAbandonedWorkersZipf) {
    run_property<FlowCache>(zipf_ops(), 1024, 0x33, 2001, 4, true);
}

TEST(ShardedCheckpoint, SurvivesParkedAndAbandonedWorkersYcsb) {
    run_property<KeyCache>(ycsb_ops(), 2048, 0x44, 2002, 4, true);
}

TEST(ShardedCheckpoint, InlineModeEmitsPerBlockCheckpoints) {
    const auto ops = zipf_ops();
    using Ops = std::span<const ReplayOp<FlowKey, std::uint32_t>>;
    FlowCache ref(1024, 0x55);
    const auto seq = replay_sequential(ref, Ops(ops));

    ShardedConfig cfg;
    cfg.shards = 4;
    cfg.batch_ops = 256;
    cfg.mode = Mode::kInline;
    std::vector<ShardedCheckpoint> cps;
    FlowCache cache(1024, 0x55);
    const auto rep = replay_sharded_checkpointed(
        cache, Ops(ops), cfg, /*every_batches=*/16,
        [&](ShardedCheckpoint&& cp) { cps.push_back(std::move(cp)); });
    EXPECT_EQ(rep.stats, seq);
    ASSERT_FALSE(cps.empty());
    for (const auto& cp : cps) {
        EXPECT_EQ(cp.base.stats.ops, cp.base.cursor);
        ASSERT_EQ(cp.shard_stats.size(), 1u);
        EXPECT_EQ(cp.shard_stats[0], cp.base.stats);
    }

    FlowCache resumed(1024, 0x55);
    const auto res =
        resume_sharded(resumed, Ops(ops), cps[cps.size() / 2], cfg);
    ASSERT_TRUE(res.is_ok()) << res.status().to_string();
    EXPECT_EQ(res.value().stats, seq);
    expect_same_contents(ref, resumed);
}

/// A drained-inline shard must not break the cut invariant: kill one worker
/// from batch 0, checkpoint mid-run, resume — the checkpoint's shard split
/// accounts the dispatcher-drained ops to the dead worker's shard.
TEST(ShardedCheckpoint, CheckpointAfterInlineDrainStaysConsistent) {
    const auto ops = zipf_ops();
    using Ops = std::span<const ReplayOp<FlowKey, std::uint32_t>>;
    FlowCache ref(1024, 0x66);
    const auto seq = replay_sequential(ref, Ops(ops));

    ShardedConfig cfg;
    cfg.shards = 4;
    cfg.batch_ops = 64;
    cfg.queue_batches = 4;
    cfg.mode = Mode::kThreaded;
    cfg.robust.push_deadline_us = 100;
    cfg.robust.stall_timeout_us = 2'000;

    fault::FaultPlan plan;
    plan.stall_worker(/*shard=*/1, /*at_batch=*/0);
    const fault::InjectedFaults faults(plan);

    std::vector<ShardedCheckpoint> cps;
    FlowCache cache(1024, 0x66);
    const auto rep = replay_sharded_checkpointed(
        cache, Ops(ops), cfg, /*every_batches=*/32,
        [&](ShardedCheckpoint&& cp) { cps.push_back(std::move(cp)); },
        faults);
    EXPECT_GE(rep.drained_inline, 1u);
    EXPECT_EQ(rep.stats, seq);
    ASSERT_FALSE(cps.empty());

    for (const auto& cp : cps) {
        ReplayStats sum;
        for (const auto& s : cp.shard_stats) sum.merge(s);
        EXPECT_EQ(sum, cp.base.stats);
        EXPECT_EQ(cp.base.stats.ops, cp.base.cursor);
    }

    FlowCache resumed(1024, 0x66);
    const auto res = resume_sharded(resumed, Ops(ops), cps.back(), cfg);
    ASSERT_TRUE(res.is_ok()) << res.status().to_string();
    EXPECT_EQ(res.value().stats, seq);
    expect_same_contents(ref, resumed);
}

/// Regression: degradation telemetry must survive a kill-and-resume.  A
/// deterministic fault plan (a worker parked from its first batch plus a
/// 20ms batch delay) guarantees the last checkpoint carries nonzero
/// telemetry; resuming fault-free must produce a report that still includes
/// those counts — i.e. the resume merges the saved telemetry instead of
/// restarting it from zero.
TEST(ShardedCheckpoint, TelemetryCarriedAcrossKillAndResume) {
    const auto ops = zipf_ops();
    using Ops = std::span<const ReplayOp<FlowKey, std::uint32_t>>;
    FlowCache ref(1024, 0x77);
    const auto seq = replay_sequential(ref, Ops(ops));

    ShardedConfig cfg;
    cfg.shards = 4;
    cfg.batch_ops = 64;
    cfg.queue_batches = 4;
    cfg.mode = Mode::kThreaded;
    cfg.robust.push_deadline_us = 100;
    cfg.robust.stall_timeout_us = 2'000;

    fault::FaultPlan plan;
    plan.stall_worker(/*shard=*/1, /*at_batch=*/0);
    plan.delay_batch(/*shard=*/2, /*at_batch=*/2, /*micros=*/20'000);
    const fault::InjectedFaults faults(plan);

    std::vector<ShardedCheckpoint> cps;
    FlowCache cache(1024, 0x77);
    const auto rep = replay_sharded_checkpointed(
        cache, Ops(ops), cfg, /*every_batches=*/32,
        [&](ShardedCheckpoint&& cp) { cps.push_back(std::move(cp)); },
        faults);
    EXPECT_EQ(rep.stats, seq);
    EXPECT_TRUE(rep.degraded());
    ASSERT_FALSE(cps.empty());

    // Telemetry in checkpoints is cumulative, so the last one carries the
    // most; the plan above must have degraded the run well before it.
    const ShardedCheckpoint& cp = cps.back();
    ASSERT_GE(cp.abandoned_workers + cp.drained_inline, 1u)
        << "fault plan failed to degrade the run before the kill point";

    // Resume fault-free with default robustness: the resume leg adds no
    // degradation of its own, so the carried telemetry must show through.
    ShardedConfig rcfg;
    rcfg.shards = 3;
    rcfg.batch_ops = 128;
    rcfg.mode = Mode::kThreaded;
    FlowCache resumed(1024, 0x77);
    const auto res = resume_sharded(resumed, Ops(ops), cp, rcfg);
    ASSERT_TRUE(res.is_ok()) << res.status().to_string();
    EXPECT_EQ(res.value().stats, seq);
    EXPECT_GE(res.value().backpressure_waits, cp.backpressure_waits);
    EXPECT_GE(res.value().park_wait_us, cp.park_wait_us);
    EXPECT_GE(res.value().drained_inline, cp.drained_inline);
    EXPECT_GE(res.value().abandoned_workers, cp.abandoned_workers);
    EXPECT_TRUE(res.value().degraded())
        << "carried telemetry lost across resume";
    expect_same_contents(ref, resumed);
}

}  // namespace
}  // namespace p4lru::replay
