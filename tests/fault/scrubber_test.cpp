// State scrubber: every injected meta-plane corruption must be detected
// (ISSUE acceptance: 100% detection) and repaired to a legal MRU-reset word
// without aborting the replay; on a clean cache the scrubber must find
// nothing and change nothing.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "p4lru/core/p4lru.hpp"
#include "p4lru/core/soa_slab.hpp"
#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/replay/replay.hpp"
#include "p4lru/trace/trace_gen.hpp"

namespace p4lru::core {
namespace {

using Slab3 = SoaSlab<std::uint64_t, std::uint32_t, 3>;
using FlowCache =
    ParallelCache<P4lru<FlowKey, std::uint32_t, 3>, FlowKey, std::uint32_t>;

// -- meta_valid truth table ----------------------------------------------

TEST(MetaValid, AcceptsEveryReachableWord) {
    // Drive one unit through a long update history; its meta word must stay
    // valid at every step (the scrubber never fires on honest state).
    Slab3 slab(4);
    for (std::uint64_t i = 0; i < 2'000; ++i) {
        slab.update_at(i % 4, i % 17, static_cast<std::uint32_t>(i));
        EXPECT_TRUE(Slab3::meta_valid(slab.meta_at(i % 4)));
    }
}

TEST(MetaValid, RejectsDuplicateSlots) {
    // Fields (0,0,1): slot 1 appears twice, slot 3 never — not a permutation.
    const auto m = static_cast<Slab3::MetaWord>(0b00'01'00'00);
    EXPECT_FALSE(Slab3::meta_valid(m));
}

TEST(MetaValid, RejectsOutOfRangeSlot) {
    // Field value 3 = slot 4 > N.
    const auto m = static_cast<Slab3::MetaWord>(0b00'11'01'00);
    EXPECT_FALSE(Slab3::meta_valid(m));
}

TEST(MetaValid, RejectsOverflowedOccupancy) {
    // N = 3 packs occupancy into 2 bits, so it can never exceed N; N = 4
    // has 8 occupancy bits and CAN hold an impossible count.
    using Slab4 = SoaSlab<std::uint64_t, std::uint32_t, 4>;
    const auto perm = Slab4::identity_meta();
    const auto m =
        static_cast<Slab4::MetaWord>(perm | (7u << Slab4::kPermBits));
    EXPECT_FALSE(Slab4::meta_valid(m));
}

TEST(MetaValid, AnySingleFieldFlipOfAValidWordIsCaught) {
    // Exhaustive over the N=3 word: for every valid meta word and every
    // nonzero XOR mask confined to one 2-bit permutation field, the result
    // must be invalid — this is the "scrubber detects 100% of meta-plane
    // corruptions" guarantee, provable because changing one field of a
    // permutation always creates a duplicate or an out-of-range slot.
    for (unsigned w = 0; w < 256; ++w) {
        const auto m = static_cast<Slab3::MetaWord>(w);
        if (!Slab3::meta_valid(m)) continue;
        for (unsigned field = 0; field < 3; ++field) {
            for (unsigned mask = 1; mask < 4; ++mask) {
                const auto bad = static_cast<Slab3::MetaWord>(
                    m ^ (mask << (2 * field)));
                EXPECT_FALSE(Slab3::meta_valid(bad))
                    << "word " << w << " field " << field << " mask " << mask;
            }
        }
    }
}

// -- scrub_range ----------------------------------------------------------

TEST(Scrubber, CleanSlabScansWithZeroFindings) {
    Slab3 slab(64);
    for (std::uint64_t i = 0; i < 500; ++i) {
        slab.update_at(i % 64, i, static_cast<std::uint32_t>(i));
    }
    const auto r = slab.scrub_range(0, 64);
    EXPECT_EQ(r.scanned, 64u);
    EXPECT_EQ(r.corrupt, 0u);
    EXPECT_EQ(r.repaired, 0u);
}

TEST(Scrubber, DetectsAndRepairsEveryInjectedCorruption) {
    Slab3 slab(128);
    for (std::uint64_t i = 0; i < 2'000; ++i) {
        slab.update_at(i % 128, i, static_cast<std::uint32_t>(i));
    }
    // Corrupt a spread of units with distinct single-field masks.
    const std::size_t victims[] = {0, 17, 63, 64, 90, 127};
    unsigned mask = 1;
    for (const std::size_t b : victims) {
        slab.corrupt_meta_at(b, mask);
        mask = mask % 3 + 1;  // cycle 1,2,3 — all single-field flips
    }
    const auto r = slab.scrub_range(0, 128);
    EXPECT_EQ(r.scanned, 128u);
    EXPECT_EQ(r.corrupt, std::size(victims)) << "100% detection";
    EXPECT_EQ(r.repaired, std::size(victims));
    // Post-repair the slab is fully valid and usable again.
    for (std::size_t b = 0; b < 128; ++b) {
        EXPECT_TRUE(Slab3::meta_valid(slab.meta_at(b)));
    }
    for (std::uint64_t i = 0; i < 500; ++i) {
        slab.update_at(i % 128, i + 9'000, 1u);
    }
}

TEST(Scrubber, RepairPreservesPlausibleOccupancy) {
    Slab3 slab(4);
    slab.update_at(0, 1, 10);
    slab.update_at(0, 2, 20);  // occupancy 2
    // Flip one permutation field only; occupancy bits stay 2.
    slab.corrupt_meta_at(0, 0b10);
    const auto r = slab.scrub_range(0, 4);
    EXPECT_EQ(r.repaired, 1u);
    EXPECT_EQ(Slab3::occupancy(slab.meta_at(0)), 2u)
        << "repair keeps the occupancy when it is still within [0, N]";
    EXPECT_TRUE(Slab3::meta_valid(slab.meta_at(0)));
}

// -- replay integration ---------------------------------------------------

std::vector<replay::ReplayOp<FlowKey, std::uint32_t>> zipf_ops() {
    trace::TraceConfig cfg;
    cfg.seed = 31;
    cfg.total_packets = 60'000;
    return replay::ops_from_packets(trace::generate_trace(cfg));
}

TEST(Scrubber, ReplayRepairsInjectedCorruptionWithoutAborting) {
    const auto ops = zipf_ops();

    fault::FaultPlan plan;
    plan.corrupt_meta(/*unit=*/11, /*at_op=*/5'000, /*xor_mask=*/0b01);
    plan.corrupt_meta(/*unit=*/200, /*at_op=*/20'000, /*xor_mask=*/0b10);
    plan.corrupt_meta(/*unit=*/777, /*at_op=*/40'000, /*xor_mask=*/0b11);
    const fault::InjectedFaults faults(plan);

    FlowCache cache(1024, 0x5C2);
    replay::ShardedConfig cfg;
    cfg.mode = replay::Mode::kInline;  // data faults need a single owner
    cfg.robust.scrub_every = 1'024;
    const auto rep = replay_sharded(
        cache, std::span<const replay::ReplayOp<FlowKey, std::uint32_t>>(ops),
        cfg, faults);

    EXPECT_EQ(rep.stats.ops, ops.size()) << "no abort: every op processed";
    EXPECT_EQ(rep.scrub.corrupt, 3u) << "all injected corruptions found";
    EXPECT_EQ(rep.scrub.repaired, 3u);
    EXPECT_TRUE(rep.degraded());
    // The cache came out structurally sound.
    EXPECT_EQ(cache.scrub_all().corrupt, 0u);
}

TEST(Scrubber, ScrubbedSequentialReplayIsBitIdenticalWhenClean) {
    const auto ops = zipf_ops();
    FlowCache plain(512, 0x99);
    const auto ref = replay_sequential(
        plain, std::span<const replay::ReplayOp<FlowKey, std::uint32_t>>(ops));

    FlowCache scrubbed(512, 0x99);
    const auto r = replay::replay_sequential_scrubbed(
        scrubbed,
        std::span<const replay::ReplayOp<FlowKey, std::uint32_t>>(ops),
        /*scrub_every=*/4'096);
    EXPECT_EQ(r.stats, ref) << "scrubbing a healthy cache changes nothing";
    EXPECT_GT(r.scrub.scanned, 0u);
    EXPECT_EQ(r.scrub.corrupt, 0u);
}

/// Scrub-cadence equivalence (ISSUE 4 satellite): the inline sharded path
/// must fire its scrub on exactly the same op counts as the sequential
/// path, for scrub cadences below, at, and above the dispatch block size.
/// The old code scrubbed at most once per block and discarded the
/// overshoot, so with scrub_every < batch_ops it under-scrubbed by up to
/// batch_ops/scrub_every times; the remainder carry fixes that, and equal
/// ScrubReport.scanned totals are the proof (each firing scans the whole
/// unit array on both paths).
TEST(Scrubber, InlineShardedScrubCadenceMatchesSequential) {
    const auto ops = zipf_ops();
    using Ops = std::span<const replay::ReplayOp<FlowKey, std::uint32_t>>;
    const std::uint64_t cadences[] = {64, 100, 256, 1'000, 4'096};
    for (const std::uint64_t scrub_every : cadences) {
        FlowCache seq(512, 0x77);
        const auto a =
            replay::replay_sequential_scrubbed(seq, Ops(ops), scrub_every);

        FlowCache inl(512, 0x77);
        replay::ShardedConfig cfg;
        cfg.mode = replay::Mode::kInline;
        cfg.batch_ops = 256;  // cadences above span both < and > this
        cfg.robust.scrub_every = scrub_every;
        const auto rep = replay_sharded(inl, Ops(ops), cfg);

        EXPECT_EQ(rep.scrub.scanned, a.scrub.scanned)
            << "scrub_every=" << scrub_every;
        EXPECT_EQ(rep.stats, a.stats) << "scrub_every=" << scrub_every;
        EXPECT_EQ(rep.scrub.corrupt, 0u);
    }
}

TEST(Scrubber, AosStorageScansCleanByConstruction) {
    AosParallelCache<P4lru<std::uint32_t, std::uint32_t, 3>, std::uint32_t,
                     std::uint32_t>
        cache(64, 3);
    for (std::uint32_t i = 0; i < 1'000; ++i) cache.update(i, i);
    const auto r = cache.scrub_all();
    EXPECT_EQ(r.scanned, 64u);
    EXPECT_EQ(r.corrupt, 0u);
}

}  // namespace
}  // namespace p4lru::core
