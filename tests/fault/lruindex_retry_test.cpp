// Driver retry-with-backoff against a fault-injected flaky db server: the
// closed loop must absorb transient refusals via retries, give up cleanly
// (counted, not wedged) on persistent ones, and — with no FlakyService
// attached — reproduce the fault-free report bit for bit.
#include <gtest/gtest.h>

#include <cstdint>

#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/systems/lruindex/db_server.hpp"
#include "p4lru/systems/lruindex/driver.hpp"
#include "p4lru/systems/lruindex/index_cache.hpp"

namespace p4lru::systems::lruindex {
namespace {

DriverConfig base_config() {
    DriverConfig cfg;
    cfg.threads = 4;
    cfg.queries = 8'000;
    cfg.workload.items = 10'000;
    cfg.workload.seed = 5;
    return cfg;
}

TEST(DriverRetry, NoFlakyServiceMatchesLegacyDriverExactly) {
    DbServer server_a(10'000, ServerCosts{});
    SeriesIndexCache cache_a(4, 256, 0x21);
    const auto a = run_driver(base_config(), server_a, &cache_a);

    DbServer server_b(10'000, ServerCosts{});
    SeriesIndexCache cache_b(4, 256, 0x21);
    auto cfg = base_config();
    cfg.retry.max_attempts = 2;  // retry knobs are inert without a service
    const auto b = run_driver(cfg, server_b, &cache_b);

    EXPECT_EQ(a.queries, b.queries);
    EXPECT_EQ(a.wrong_replies, b.wrong_replies);
    EXPECT_EQ(a.retries, 0u);
    EXPECT_EQ(b.retries, 0u);
    EXPECT_DOUBLE_EQ(a.throughput_ktps, b.throughput_ktps);
    EXPECT_DOUBLE_EQ(a.avg_latency_us, b.avg_latency_us);
}

TEST(DriverRetry, TransientRefusalsAreRetriedToCompletion) {
    // Each incident fails 2 attempts; with 4 allowed attempts every query
    // eventually succeeds — zero failed queries, correctness intact.
    const fault::FlakyService flaky(/*seed=*/11, /*period=*/8, /*fails=*/2);
    DbServer server(10'000, ServerCosts{});
    SeriesIndexCache cache(4, 256, 0x21);
    auto cfg = base_config();
    cfg.flaky = &flaky;
    cfg.retry.max_attempts = 4;
    const auto r = run_driver(cfg, server, &cache);

    EXPECT_EQ(r.queries, cfg.queries);
    EXPECT_EQ(r.failed_queries, 0u);
    EXPECT_EQ(r.wrong_replies, 0u);
    EXPECT_GT(r.retries, 0u) << "~1/8 of queries should have needed retries";
    // Exactly 2 resends per incident.
    std::uint64_t incidents = 0;
    for (std::uint64_t seq = 0; seq < cfg.queries; ++seq) {
        if (flaky.is_incident(seq)) ++incidents;
    }
    EXPECT_EQ(r.retries, incidents * 2);
}

TEST(DriverRetry, PersistentRefusalsFailCleanlyWithoutWedging) {
    // Incidents fail 5 attempts but only 3 are allowed: those queries must
    // complete as failures — the closed loop still finishes every query.
    const fault::FlakyService flaky(/*seed=*/13, /*period=*/10, /*fails=*/5);
    DbServer server(10'000, ServerCosts{});
    SeriesIndexCache cache(4, 256, 0x21);
    auto cfg = base_config();
    cfg.flaky = &flaky;
    cfg.retry.max_attempts = 3;
    const auto r = run_driver(cfg, server, &cache);

    std::uint64_t incidents = 0;
    for (std::uint64_t seq = 0; seq < cfg.queries; ++seq) {
        if (flaky.is_incident(seq)) ++incidents;
    }
    EXPECT_GT(incidents, 0u);
    EXPECT_EQ(r.queries, cfg.queries) << "failed queries still complete";
    EXPECT_EQ(r.failed_queries, incidents);
    EXPECT_EQ(r.retries, incidents * 2) << "max_attempts-1 resends each";
    EXPECT_EQ(r.wrong_replies, 0u) << "failures are not wrong answers";
}

TEST(DriverRetry, BackoffShowsUpInLatency) {
    DbServer server_a(10'000, ServerCosts{});
    SeriesIndexCache cache_a(4, 256, 0x21);
    const auto clean = run_driver(base_config(), server_a, &cache_a);

    const fault::FlakyService flaky(17, 4, 2);
    DbServer server_b(10'000, ServerCosts{});
    SeriesIndexCache cache_b(4, 256, 0x21);
    auto cfg = base_config();
    cfg.flaky = &flaky;
    cfg.retry.backoff = 100 * kMicrosecond;
    const auto flaky_run = run_driver(cfg, server_b, &cache_b);

    EXPECT_GT(flaky_run.avg_latency_us, clean.avg_latency_us)
        << "retried queries pay their backoff in simulated time";
}

TEST(DriverRetry, BackoffSaturatesAtCeiling) {
    RetryConfig cfg;
    cfg.backoff = 20 * kMicrosecond;
    cfg.max_backoff = 10 * kMillisecond;

    // Pure doubling below the ceiling.
    EXPECT_EQ(retry_backoff(cfg, 0), 20 * kMicrosecond);
    EXPECT_EQ(retry_backoff(cfg, 1), 40 * kMicrosecond);
    EXPECT_EQ(retry_backoff(cfg, 2), 80 * kMicrosecond);
    EXPECT_EQ(retry_backoff(cfg, 8), 5'120 * kMicrosecond);

    // 20us << 9 = 10.24ms crosses the 10ms ceiling: clamped from there on,
    // monotone non-decreasing forever, never overflowing.  Attempt 63+
    // would shift past the width of TimeNs entirely — the old code's UB.
    TimeNs prev = 0;
    for (std::uint32_t attempt = 0; attempt < 80; ++attempt) {
        const TimeNs b = retry_backoff(cfg, attempt);
        EXPECT_GE(b, prev) << "attempt " << attempt;
        EXPECT_LE(b, cfg.max_backoff) << "attempt " << attempt;
        prev = b;
    }
    EXPECT_EQ(retry_backoff(cfg, 9), cfg.max_backoff);
    EXPECT_EQ(retry_backoff(cfg, 63), cfg.max_backoff);
    EXPECT_EQ(retry_backoff(cfg, 64), cfg.max_backoff);
    EXPECT_EQ(retry_backoff(cfg, 0xFFFFFFFFu), cfg.max_backoff);
}

TEST(DriverRetry, BackoffEdgeCases) {
    // Zero base: no delay, regardless of attempt.
    RetryConfig zero;
    zero.backoff = 0;
    EXPECT_EQ(retry_backoff(zero, 0), 0u);
    EXPECT_EQ(retry_backoff(zero, 70), 0u);

    // Base already at/above the ceiling: clamped immediately.
    RetryConfig high;
    high.backoff = 20 * kMillisecond;
    high.max_backoff = 10 * kMillisecond;
    EXPECT_EQ(retry_backoff(high, 0), high.max_backoff);

    // No explicit ceiling (<= 0): still saturates at the last representable
    // doubling instead of shifting into the sign bit.
    RetryConfig open;
    open.backoff = 20 * kMicrosecond;
    open.max_backoff = 0;
    constexpr TimeNs kMax = std::numeric_limits<TimeNs>::max();
    EXPECT_EQ(retry_backoff(open, 40), TimeNs{20'000} << 40);
    EXPECT_EQ(retry_backoff(open, 63), kMax);
    EXPECT_EQ(retry_backoff(open, 200), kMax);
    TimeNs prev = 0;
    for (std::uint32_t attempt = 0; attempt < 100; ++attempt) {
        const TimeNs b = retry_backoff(open, attempt);
        ASSERT_GE(b, prev) << "attempt " << attempt;
        ASSERT_GT(b, 0) << "overflowed at attempt " << attempt;
        prev = b;
    }
}

TEST(DriverRetry, DeepRetryLadderStaysFiniteUnderSaturation) {
    // A persistently refusing server with a deep attempt budget used to
    // push `backoff << k` into signed-overflow UB around k=38 and wreck
    // the simulated clock.  With the clamp the run completes with sane,
    // finite latency; under UBSan this is also the no-overflow witness.
    const fault::FlakyService flaky(/*seed=*/19, /*period=*/6, /*fails=*/80);
    DbServer server(10'000, ServerCosts{});
    SeriesIndexCache cache(4, 256, 0x21);
    auto cfg = base_config();
    cfg.queries = 2'000;
    cfg.flaky = &flaky;
    cfg.retry.max_attempts = 64;  // 63 resends: would shift far past 2^62
    const auto r = run_driver(cfg, server, &cache);

    EXPECT_EQ(r.queries, cfg.queries) << "closed loop wedged";
    EXPECT_GT(r.failed_queries, 0u);
    EXPECT_EQ(r.wrong_replies, 0u);
    EXPECT_GT(r.avg_latency_us, 0.0);
    // 63 resends clamped at 10ms each bounds an incident's tail under ~1s
    // of simulated time; an overflow would have produced garbage (negative
    // or astronomically large) latencies.
    EXPECT_LT(r.avg_latency_us, 2e6) << "latency sum corrupted by overflow";
}

TEST(DriverRetry, ZeroAttemptsRejected) {
    const fault::FlakyService flaky(1, 2, 1);
    DbServer server(100, ServerCosts{});
    SeriesIndexCache cache(2, 64, 0x21);
    auto cfg = base_config();
    cfg.flaky = &flaky;
    cfg.retry.max_attempts = 0;
    EXPECT_THROW(run_driver(cfg, server, &cache), std::invalid_argument);
}

}  // namespace
}  // namespace p4lru::systems::lruindex
