// Driver retry-with-backoff against a fault-injected flaky db server: the
// closed loop must absorb transient refusals via retries, give up cleanly
// (counted, not wedged) on persistent ones, and — with no FlakyService
// attached — reproduce the fault-free report bit for bit.
#include <gtest/gtest.h>

#include <cstdint>

#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/systems/lruindex/db_server.hpp"
#include "p4lru/systems/lruindex/driver.hpp"
#include "p4lru/systems/lruindex/index_cache.hpp"

namespace p4lru::systems::lruindex {
namespace {

DriverConfig base_config() {
    DriverConfig cfg;
    cfg.threads = 4;
    cfg.queries = 8'000;
    cfg.workload.items = 10'000;
    cfg.workload.seed = 5;
    return cfg;
}

TEST(DriverRetry, NoFlakyServiceMatchesLegacyDriverExactly) {
    DbServer server_a(10'000, ServerCosts{});
    SeriesIndexCache cache_a(4, 256, 0x21);
    const auto a = run_driver(base_config(), server_a, &cache_a);

    DbServer server_b(10'000, ServerCosts{});
    SeriesIndexCache cache_b(4, 256, 0x21);
    auto cfg = base_config();
    cfg.retry.max_attempts = 2;  // retry knobs are inert without a service
    const auto b = run_driver(cfg, server_b, &cache_b);

    EXPECT_EQ(a.queries, b.queries);
    EXPECT_EQ(a.wrong_replies, b.wrong_replies);
    EXPECT_EQ(a.retries, 0u);
    EXPECT_EQ(b.retries, 0u);
    EXPECT_DOUBLE_EQ(a.throughput_ktps, b.throughput_ktps);
    EXPECT_DOUBLE_EQ(a.avg_latency_us, b.avg_latency_us);
}

TEST(DriverRetry, TransientRefusalsAreRetriedToCompletion) {
    // Each incident fails 2 attempts; with 4 allowed attempts every query
    // eventually succeeds — zero failed queries, correctness intact.
    const fault::FlakyService flaky(/*seed=*/11, /*period=*/8, /*fails=*/2);
    DbServer server(10'000, ServerCosts{});
    SeriesIndexCache cache(4, 256, 0x21);
    auto cfg = base_config();
    cfg.flaky = &flaky;
    cfg.retry.max_attempts = 4;
    const auto r = run_driver(cfg, server, &cache);

    EXPECT_EQ(r.queries, cfg.queries);
    EXPECT_EQ(r.failed_queries, 0u);
    EXPECT_EQ(r.wrong_replies, 0u);
    EXPECT_GT(r.retries, 0u) << "~1/8 of queries should have needed retries";
    // Exactly 2 resends per incident.
    std::uint64_t incidents = 0;
    for (std::uint64_t seq = 0; seq < cfg.queries; ++seq) {
        if (flaky.is_incident(seq)) ++incidents;
    }
    EXPECT_EQ(r.retries, incidents * 2);
}

TEST(DriverRetry, PersistentRefusalsFailCleanlyWithoutWedging) {
    // Incidents fail 5 attempts but only 3 are allowed: those queries must
    // complete as failures — the closed loop still finishes every query.
    const fault::FlakyService flaky(/*seed=*/13, /*period=*/10, /*fails=*/5);
    DbServer server(10'000, ServerCosts{});
    SeriesIndexCache cache(4, 256, 0x21);
    auto cfg = base_config();
    cfg.flaky = &flaky;
    cfg.retry.max_attempts = 3;
    const auto r = run_driver(cfg, server, &cache);

    std::uint64_t incidents = 0;
    for (std::uint64_t seq = 0; seq < cfg.queries; ++seq) {
        if (flaky.is_incident(seq)) ++incidents;
    }
    EXPECT_GT(incidents, 0u);
    EXPECT_EQ(r.queries, cfg.queries) << "failed queries still complete";
    EXPECT_EQ(r.failed_queries, incidents);
    EXPECT_EQ(r.retries, incidents * 2) << "max_attempts-1 resends each";
    EXPECT_EQ(r.wrong_replies, 0u) << "failures are not wrong answers";
}

TEST(DriverRetry, BackoffShowsUpInLatency) {
    DbServer server_a(10'000, ServerCosts{});
    SeriesIndexCache cache_a(4, 256, 0x21);
    const auto clean = run_driver(base_config(), server_a, &cache_a);

    const fault::FlakyService flaky(17, 4, 2);
    DbServer server_b(10'000, ServerCosts{});
    SeriesIndexCache cache_b(4, 256, 0x21);
    auto cfg = base_config();
    cfg.flaky = &flaky;
    cfg.retry.backoff = 100 * kMicrosecond;
    const auto flaky_run = run_driver(cfg, server_b, &cache_b);

    EXPECT_GT(flaky_run.avg_latency_us, clean.avg_latency_us)
        << "retried queries pay their backoff in simulated time";
}

TEST(DriverRetry, ZeroAttemptsRejected) {
    const fault::FlakyService flaky(1, 2, 1);
    DbServer server(100, ServerCosts{});
    SeriesIndexCache cache(2, 64, 0x21);
    auto cfg = base_config();
    cfg.flaky = &flaky;
    cfg.retry.max_attempts = 0;
    EXPECT_THROW(run_driver(cfg, server, &cache), std::invalid_argument);
}

}  // namespace
}  // namespace p4lru::systems::lruindex
