// Checkpoint/resume: killing a replay at an arbitrary cursor and resuming
// from the snapshot — on a fresh cache object — must reproduce the exact
// final statistics and cache contents of the uninterrupted run (ISSUE
// acceptance: kill-and-resume at 3 random cursors, bit-identical stats).
#include "p4lru/replay/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "p4lru/common/random.hpp"
#include "p4lru/core/p4lru.hpp"
#include "p4lru/trace/trace_gen.hpp"

namespace p4lru::replay {
namespace {

using FlowCache =
    core::ParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                        std::uint32_t>;
using AosFlowCache =
    core::AosParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                           std::uint32_t>;

template <typename CacheA, typename CacheB>
void expect_same_contents(const CacheA& a, const CacheB& b) {
    ASSERT_EQ(a.unit_count(), b.unit_count());
    for (std::size_t u = 0; u < a.unit_count(); ++u) {
        const auto& ua = a.unit(u);
        const auto& ub = b.unit(u);
        ASSERT_EQ(ua.size(), ub.size()) << "unit " << u;
        for (std::size_t i = 1; i <= ua.size(); ++i) {
            EXPECT_EQ(ua.key_at(i), ub.key_at(i)) << "unit " << u;
            EXPECT_EQ(ua.value_at(i), ub.value_at(i)) << "unit " << u;
        }
    }
}

std::vector<ReplayOp<FlowKey, std::uint32_t>> zipf_ops() {
    trace::TraceConfig cfg;
    cfg.seed = 55;
    cfg.total_packets = 50'000;
    return ops_from_packets(trace::generate_trace(cfg));
}

using Ops = std::span<const ReplayOp<FlowKey, std::uint32_t>>;

/// Kill-and-resume at `cursor`: replay [0, cursor) on one cache, snapshot,
/// restore the snapshot into a *fresh* cache (simulated process restart),
/// replay the rest there, and compare against the uninterrupted run.
template <typename Cache>
void kill_and_resume_at(const std::vector<ReplayOp<FlowKey, std::uint32_t>>&
                            ops,
                        std::size_t cursor) {
    Cache full(1024, 0x17);
    const auto ref = replay_sequential(full, Ops(ops));

    Cache first(1024, 0x17);
    const auto head = replay_sequential(first, Ops(ops).subspan(0, cursor));
    const auto cp = take_checkpoint(first, cursor, head);

    Cache resumed(1024, 0x17);  // fresh object: nothing carried over
    const auto r = resume_sequential(resumed, Ops(ops), cp);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    EXPECT_EQ(r.value(), ref) << "cursor " << cursor;
    expect_same_contents(full, resumed);
}

TEST(CheckpointResume, ThreeRandomCursorsSoaLayout) {
    const auto ops = zipf_ops();
    rng::SplitMix64 rng(0xC4E);
    for (int i = 0; i < 3; ++i) {
        const auto cursor =
            static_cast<std::size_t>(rng.next() % ops.size());
        kill_and_resume_at<FlowCache>(ops, cursor);
    }
}

TEST(CheckpointResume, ThreeRandomCursorsAosLayout) {
    const auto ops = zipf_ops();
    rng::SplitMix64 rng(0xA05);
    for (int i = 0; i < 3; ++i) {
        const auto cursor =
            static_cast<std::size_t>(rng.next() % ops.size());
        kill_and_resume_at<AosFlowCache>(ops, cursor);
    }
}

TEST(CheckpointResume, BoundaryCursors) {
    const auto ops = zipf_ops();
    kill_and_resume_at<FlowCache>(ops, 0);           // nothing replayed yet
    kill_and_resume_at<FlowCache>(ops, ops.size());  // everything replayed
}

TEST(CheckpointResume, CheckpointedRunEmitsSnapshotsAndMatches) {
    const auto ops = zipf_ops();
    FlowCache plain(512, 0x31);
    const auto ref = replay_sequential(plain, Ops(ops));

    FlowCache cache(512, 0x31);
    std::vector<ReplayCheckpoint> cps;
    const auto stats = replay_sequential_checkpointed(
        cache, Ops(ops), /*every=*/10'000,
        [&](ReplayCheckpoint&& cp) { cps.push_back(std::move(cp)); });
    EXPECT_EQ(stats, ref);
    ASSERT_EQ(cps.size(), (ops.size() - 1) / 10'000);
    // Every emitted checkpoint is a valid resume point.
    for (const auto& cp : cps) {
        FlowCache resumed(512, 0x31);
        const auto r = resume_sequential(resumed, Ops(ops), cp);
        ASSERT_TRUE(r.is_ok());
        EXPECT_EQ(r.value(), ref) << "cursor " << cp.cursor;
        expect_same_contents(plain, resumed);
    }
}

TEST(CheckpointResume, RejectsShapeMismatchWithTypedError) {
    const auto ops = zipf_ops();
    FlowCache small(256, 0x17);
    const auto cp = take_checkpoint(small, 0, ReplayStats{});

    FlowCache big(1024, 0x17);
    const auto r = resume_sequential(big, Ops(ops), cp);
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kInvalidState);
}

TEST(CheckpointResume, RejectsCursorBeyondStream) {
    const auto ops = zipf_ops();
    FlowCache cache(256, 0x17);
    auto cp = take_checkpoint(cache, 0, ReplayStats{});
    cp.cursor = ops.size() + 1;
    const auto r = resume_sequential(cache, Ops(ops), cp);
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kInvalidState);
}

TEST(CheckpointResume, RejectsForgedEqualSizeCrossLayoutImage) {
    // The pre-tag guards were unit count + plane byte size only: an AoS
    // checkpoint whose plane image happens (or is forged) to match the SoA
    // plane size sailed through both and was silently reinterpreted.  The
    // layout id + geometry fingerprint must refuse it before any plane
    // byte is looked at.
    const auto ops = zipf_ops();
    AosFlowCache aos(1024, 0x17);
    auto cp = take_checkpoint(aos, 0, ReplayStats{});

    FlowCache soa(1024, 0x17);
    soa.materialize();
    std::vector<std::byte> soa_planes;
    soa.storage().save_planes(soa_planes);
    cp.planes.resize(soa_planes.size());  // defeat the size guard

    const auto r = resume_sequential(soa, Ops(ops), cp);
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kInvalidState);
    EXPECT_NE(r.status().message().find("layout"), std::string::npos)
        << "rejection must name the layout mismatch, got: "
        << r.status().to_string();
}

TEST(CheckpointResume, RejectsCrossLayoutPlaneImage) {
    // An AoS plane image has a different size than the slab's planes for
    // the same geometry; load_planes must refuse rather than reinterpret.
    const auto ops = zipf_ops();
    AosFlowCache aos(1024, 0x17);
    const auto cp = take_checkpoint(aos, 0, ReplayStats{});

    FlowCache soa(1024, 0x17);
    const auto r = resume_sequential(soa, Ops(ops), cp);
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kInvalidState);
}

}  // namespace
}  // namespace p4lru::replay
