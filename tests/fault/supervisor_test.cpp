// Crash-recovery supervisor acceptance (DESIGN.md §12, ISSUE 8): a
// checkpointed replay driven through the DurableStore survives a
// deterministic crash at EVERY fault::CrashPoint — and a multi-crash
// gauntlet — finishing with statistics and a canonical state image
// bit-identical to an uninterrupted run.  Proven for both cache storage
// layouts (SoA and AoS ParallelCache behind CacheReplayTarget) and for a
// real system target (LruMon), plus the cold-start, warm-store and
// attempt-exhaustion edges.
#include "p4lru/replay/supervisor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "p4lru/cache/policy.hpp"
#include "p4lru/core/p4lru.hpp"
#include "p4lru/replay/replay.hpp"
#include "p4lru/systems/lrumon/lrumon_target.hpp"
#include "p4lru/trace/trace_gen.hpp"
#include "../test_util.hpp"

namespace p4lru::replay {
namespace {

using SoaCache =
    core::ParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                        std::uint32_t>;
using AosCache =
    core::AosParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                           std::uint32_t>;

std::vector<PacketRecord> small_trace(std::uint64_t seed,
                                      std::size_t packets = 12'000) {
    trace::TraceConfig cfg;
    cfg.seed = seed;
    cfg.total_packets = packets;
    cfg.segments = 3;
    return trace::generate_trace(cfg);
}

systems::lrumon::LruMonTarget make_lrumon() {
    using namespace systems::lrumon;
    LruMonConfig cfg;
    cfg.threshold = 300;
    return LruMonTarget(
        6,
        [](std::size_t p) {
            FilterConfig fc;
            fc.cm_width = 1u << 10;
            fc.cm_depth = 2;
            fc.seed = 0x70EEE + p;
            return std::make_unique<CmFilter>(fc);
        },
        [](std::size_t p) {
            return std::make_unique<cache::P4lruArrayPolicy<
                std::uint32_t, FlowLen, 3, core::AddMerge>>(
                64, static_cast<std::uint32_t>(0xF11 + p * 0x9E37u));
        },
        cfg);
}

template <typename Target>
std::vector<std::byte> state_of(const Target& t) {
    std::vector<std::byte> out;
    t.save_state(out);
    return out;
}

ShardedConfig engine_config(Mode mode) {
    ShardedConfig cfg;
    cfg.shards = 3;
    cfg.batch_ops = 64;
    cfg.mode = mode;
    return cfg;
}

/// The generic acceptance check: run `ops` uninterrupted for the reference,
/// then supervised under `plan`; the supervised run must succeed, survive
/// exactly `plan`'s crashes, and land on bit-identical stats + state.
template <typename Make, typename Op>
void check_supervised(Make make, const std::vector<Op>& ops, Mode mode,
                      const fault::FaultPlan& plan,
                      std::size_t expect_crashes) {
    using Target = decltype(make());
    auto ref = make();
    const auto seq =
        replay_target_sequential(ref, std::span<const Op>(ops));
    const auto ref_state = state_of(ref);
    ASSERT_FALSE(ref_state.empty());

    testutil::ScopedTempDir tmp{"p4lru_sup"};
    DurableStore store(tmp.file("store"), {.retain = 3, .sync = false});
    std::deque<Target> lives;  // keep every attempt's target alive
    auto factory = [&]() -> Target& {
        lives.push_back(make());
        return lives.back();
    };
    SupervisorConfig sup;
    sup.every_batches = 4;
    sup.max_attempts = expect_crashes + 2;
    const auto sv = run_supervised(factory, std::span<const Op>(ops),
                                   engine_config(mode), store, sup, plan);
    ASSERT_TRUE(sv.is_ok()) << sv.status().to_string();
    EXPECT_EQ(sv.value().report.stats, seq) << "supervised stats diverged";
    EXPECT_EQ(sv.value().crashes, expect_crashes);
    EXPECT_EQ(sv.value().attempts, expect_crashes + 1)
        << "every crash costs exactly one extra attempt";
    EXPECT_EQ(state_of(lives.back()), ref_state)
        << "supervised state image diverged";
    if (expect_crashes > 0) {
        EXPECT_GT(sv.value().resumed_from_gen, 0u)
            << "recovery must restore a generation, not cold-start";
        EXPECT_GT(sv.value().backoff_us, 0u);
    }
}

// ---------------------------------------------------------------------------
// Crash-point sweep: each CrashPoint, alone, through all three targets.

class SupervisorCrashPointSweep
    : public ::testing::TestWithParam<fault::CrashPoint> {};

TEST_P(SupervisorCrashPointSweep, SoaCacheRecoversBitIdentical) {
    const auto ops = ops_from_packets(small_trace(41));
    std::deque<SoaCache> caches;
    const auto make = [&caches] {
        caches.emplace_back(256, 0x5C);
        return CacheReplayTarget<SoaCache, FlowKey, std::uint32_t>(
            caches.back());
    };
    fault::FaultPlan plan;
    plan.crash(2, GetParam(), /*section=*/1);
    check_supervised(make, ops, Mode::kThreaded, plan, 1);
}

TEST_P(SupervisorCrashPointSweep, AosCacheRecoversBitIdentical) {
    const auto ops = ops_from_packets(small_trace(42));
    std::deque<AosCache> caches;
    const auto make = [&caches] {
        caches.emplace_back(256, 0x5C);
        return CacheReplayTarget<AosCache, FlowKey, std::uint32_t>(
            caches.back());
    };
    fault::FaultPlan plan;
    plan.crash(2, GetParam(), /*section=*/2);
    check_supervised(make, ops, Mode::kInline, plan, 1);
}

TEST_P(SupervisorCrashPointSweep, LruMonSystemRecoversBitIdentical) {
    const auto ops = small_trace(43);
    fault::FaultPlan plan;
    plan.crash(2, GetParam(), /*section=*/0);
    check_supervised([] { return make_lrumon(); }, ops, Mode::kThreaded,
                     plan, 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllCrashPoints, SupervisorCrashPointSweep,
    ::testing::Values(fault::CrashPoint::kBeforeWrite,
                      fault::CrashPoint::kTornTemp,
                      fault::CrashPoint::kTornInstall,
                      fault::CrashPoint::kBeforeRename,
                      fault::CrashPoint::kAfterInstall,
                      fault::CrashPoint::kBetweenEpochs),
    [](const auto& info) {
        return std::string(fault::crash_point_name(info.param));
    });

// ---------------------------------------------------------------------------
// Multi-crash gauntlet: four crashes of different kinds in one run, each
// retry resuming from whatever the previous death left recoverable.

TEST(SupervisorTest, MultiCrashGauntletStillBitIdentical) {
    const auto ops = ops_from_packets(small_trace(44, 16'000));
    std::deque<SoaCache> caches;
    const auto make = [&caches] {
        caches.emplace_back(256, 0x5C);
        return CacheReplayTarget<SoaCache, FlowKey, std::uint32_t>(
            caches.back());
    };
    fault::FaultPlan plan;
    plan.crash(1, fault::CrashPoint::kTornTemp, 1)
        .crash(3, fault::CrashPoint::kTornInstall, 2)
        .crash(6, fault::CrashPoint::kBeforeRename)
        .crash(9, fault::CrashPoint::kAfterInstall);
    check_supervised(make, ops, Mode::kThreaded, plan, 4);
}

// ---------------------------------------------------------------------------
// Edges.

TEST(SupervisorTest, CleanRunIsSingleAttemptColdStart) {
    const auto ops = ops_from_packets(small_trace(45));
    std::deque<SoaCache> caches;
    const auto make = [&caches] {
        caches.emplace_back(256, 0x5C);
        return CacheReplayTarget<SoaCache, FlowKey, std::uint32_t>(
            caches.back());
    };
    testutil::ScopedTempDir tmp{"p4lru_sup"};
    DurableStore store(tmp.file("store"), {.retain = 3, .sync = false});
    const auto sv = run_supervised(
        make, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops),
        engine_config(Mode::kInline), store);
    ASSERT_TRUE(sv.is_ok()) << sv.status().to_string();
    EXPECT_EQ(sv.value().attempts, 1u);
    EXPECT_EQ(sv.value().crashes, 0u);
    EXPECT_EQ(sv.value().resumed_from_gen, 0u);
    EXPECT_TRUE(sv.value().rejected.empty());
    EXPECT_FALSE(store.list().empty())
        << "a clean run still leaves durable generations behind";
}

TEST(SupervisorTest, WarmStoreResumesInsteadOfColdStarting) {
    const auto ops = ops_from_packets(small_trace(46));
    const auto span = std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops);
    std::deque<SoaCache> caches;
    auto factory = [&]() -> decltype(auto) {
        caches.emplace_back(256, 0x5C);
        return CacheReplayTarget<SoaCache, FlowKey, std::uint32_t>(
            caches.back());
    };
    testutil::ScopedTempDir tmp{"p4lru_sup"};
    DurableStore store(tmp.file("store"), {.retain = 3, .sync = false});
    const auto first = run_supervised(factory, span,
                                      engine_config(Mode::kInline), store);
    ASSERT_TRUE(first.is_ok()) << first.status().to_string();

    // A second supervised run over the same store picks up the newest
    // generation and replays only the suffix — same final stats.
    const auto second = run_supervised(factory, span,
                                       engine_config(Mode::kInline), store);
    ASSERT_TRUE(second.is_ok()) << second.status().to_string();
    EXPECT_GT(second.value().resumed_from_gen, 0u);
    EXPECT_EQ(second.value().report.stats, first.value().report.stats);
}

TEST(SupervisorTest, ExhaustedAttemptsFailUnavailableWithLastCause) {
    const auto ops = ops_from_packets(small_trace(47, 8'000));
    std::deque<SoaCache> caches;
    auto factory = [&]() -> decltype(auto) {
        caches.emplace_back(256, 0x5C);
        return CacheReplayTarget<SoaCache, FlowKey, std::uint32_t>(
            caches.back());
    };
    fault::FaultPlan plan;  // a crash at every install: never finishes
    for (std::uint64_t at = 0; at < 64; ++at) {
        plan.crash(at, fault::CrashPoint::kTornInstall, at % 3);
    }
    testutil::ScopedTempDir tmp{"p4lru_sup"};
    DurableStore store(tmp.file("store"), {.retain = 3, .sync = false});
    SupervisorConfig sup;
    sup.every_batches = 4;
    sup.max_attempts = 3;
    const auto sv = run_supervised(
        factory, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops),
        engine_config(Mode::kInline), store, sup, plan);
    ASSERT_FALSE(sv.is_ok());
    EXPECT_EQ(sv.status().code(), ErrorCode::kUnavailable);
    EXPECT_NE(sv.status().message().find("3 attempts"), std::string::npos)
        << sv.status().to_string();
}

TEST(SupervisorTest, BackoffSaturatesAtTheCap) {
    SupervisorConfig sup;
    sup.backoff_base_us = 100;
    sup.backoff_cap_us = 1'500;
    EXPECT_EQ(backoff_delay_us(sup, 0), 0u);
    EXPECT_EQ(backoff_delay_us(sup, 1), 100u);
    EXPECT_EQ(backoff_delay_us(sup, 2), 200u);
    EXPECT_EQ(backoff_delay_us(sup, 4), 800u);
    EXPECT_EQ(backoff_delay_us(sup, 5), 1'500u);  // 1600 → cap
    EXPECT_EQ(backoff_delay_us(sup, 40), 1'500u);
    EXPECT_EQ(backoff_delay_us(sup, 200), 1'500u);  // shift saturates
}

}  // namespace
}  // namespace p4lru::replay
