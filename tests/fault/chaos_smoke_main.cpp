// Standalone chaos smoke for the hardened replay engine: 10 random
// fault-plan seeds (stalls + delays against tiny rings), each checked for
// bit-identical statistics and contents against sequential replay.  Every
// seed is printed before its round, so a failure names the exact FaultPlan
// to replay (`P4LRU_CHAOS_SEEDS=<s1>,<s2>,...` re-runs chosen seeds).
// Built as its own binary (fault_chaos_smoke) so CI can run it nightly-style
// with fresh entropy while the gtest suite stays deterministic.
//
// Each seed runs three rounds: the plain chaos-equivalence round, a
// kill-and-resume round — the same faulted replay with periodic checkpoint
// emission, killed at a seed-chosen checkpoint, persisted to disk, read
// back, and resumed on a fresh cache — and a supervised crash-recovery
// round: the replay driven through a DurableStore-backed supervisor with
// three deterministic crashes (torn temp, torn install, lost rename)
// injected mid-stream, which must restart from the newest valid generation
// each time and still finish bit-identical to sequential.  A fourth,
// streamed round replays the same trace through a ChunkedFileSource whose
// background reader is faulted (short reads, EINTR storms, stalls) on top
// of the engine chaos plan.
//
// The supervised round runs fully instrumented (obs/metrics.hpp): one
// Registry wired through supervisor, engine and durable store, sampled on a
// cadence into <store-dir>/metrics.jsonl; after the run every record must
// re-parse with the library's own reader and the final snapshot's
// supervisor counters must equal the SupervisedReport.
//
// All disk traffic stays inside a per-run mkdtemp scratch directory, so
// parallel smoke invocations never collide.  Set P4LRU_CHAOS_STORE_DIR to
// keep each seed's generational store (under <dir>/seed-<seed>) after
// exit — CI points the p4lru_ckpt and p4lru_metrics CLI smokes at those
// remains.
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "p4lru/core/p4lru.hpp"
#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/obs/exposition.hpp"
#include "p4lru/obs/metrics.hpp"
#include "p4lru/obs/sampler.hpp"
#include "p4lru/replay/checkpoint_io.hpp"
#include "p4lru/replay/durable_store.hpp"
#include "p4lru/replay/op_source.hpp"
#include "p4lru/replay/replay.hpp"
#include "p4lru/replay/supervisor.hpp"
#include "p4lru/trace/trace_gen.hpp"
#include "p4lru/trace/trace_io.hpp"
#include "p4lru/trace/trace_source.hpp"
#include "../test_util.hpp"

namespace {

std::vector<std::uint64_t> pick_seeds() {
    if (const char* env = std::getenv("P4LRU_CHAOS_SEEDS")) {
        std::vector<std::uint64_t> seeds;
        const char* p = env;
        while (*p != '\0') {
            char* end = nullptr;
            const auto v = std::strtoull(p, &end, 10);
            if (end == p) break;
            seeds.push_back(v);
            p = (*end == ',') ? end + 1 : end;
        }
        if (!seeds.empty()) return seeds;
    }
    std::random_device rd;
    std::vector<std::uint64_t> seeds(10);
    for (auto& s : seeds) {
        s = (static_cast<std::uint64_t>(rd()) << 32) | rd();
    }
    return seeds;
}

}  // namespace

int main() {
    using namespace p4lru;
    using Cache = core::ParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>,
                                      FlowKey, std::uint32_t>;

    trace::TraceConfig tcfg;
    tcfg.seed = 13;
    tcfg.total_packets = 100'000;
    tcfg.segments = 4;
    const auto trace = trace::generate_trace(tcfg);
    const auto ops = replay::ops_from_packets(trace);
    const auto span =
        std::span<const replay::ReplayOp<FlowKey, std::uint32_t>>(ops);

    Cache seq_cache(1024, 0x7A);
    const auto seq = replay::replay_sequential(seq_cache, span);

    replay::ShardedConfig cfg;
    cfg.shards = 4;
    cfg.batch_ops = 64;
    cfg.queue_batches = 4;
    cfg.mode = replay::Mode::kThreaded;
    cfg.robust.push_deadline_us = 100;
    cfg.robust.stall_timeout_us = 2'000;

    fault::ChaosSpec spec;
    spec.shards = 4;
    spec.batches = 32;
    spec.stalls = 2;
    spec.delays = 4;
    spec.max_delay_us = 500;

    testutil::ScopedTempDir scratch{"p4lru_chaos"};
    const char* store_env = std::getenv("P4LRU_CHAOS_STORE_DIR");
    const std::string store_base = store_env != nullptr ? store_env : "";

    // On-disk copy of the trace for the streamed I/O-fault rounds: each
    // seed replays it through a ChunkedFileSource whose reader is fed
    // seed-chosen short reads, EINTR storms and stalls on top of the
    // engine's own chaos plan.
    const std::string trace_path = scratch.file("trace.bin");
    trace::write_trace(trace_path, trace);

    const auto seeds = pick_seeds();
    std::size_t degraded_rounds = 0;
    std::size_t crashes_survived = 0;
    for (const auto seed : seeds) {
        std::printf("chaos seed %llu ... ",
                    static_cast<unsigned long long>(seed));
        std::fflush(stdout);
        const auto plan = fault::FaultPlan::chaos(seed, spec);
        const fault::InjectedFaults faults(plan);
        Cache cache(1024, 0x7A);
        const auto rep = replay::replay_sharded(cache, span, cfg, faults);
        if (!(rep.stats == seq)) {
            std::fprintf(
                stderr,
                "\nchaos seed %llu: stats diverge from sequential "
                "(ops %llu/%llu hits %llu/%llu); re-run with "
                "P4LRU_CHAOS_SEEDS=%llu\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(rep.stats.ops),
                static_cast<unsigned long long>(seq.ops),
                static_cast<unsigned long long>(rep.stats.hits),
                static_cast<unsigned long long>(seq.hits),
                static_cast<unsigned long long>(seed));
            return 1;
        }
        if (rep.degraded()) ++degraded_rounds;

        // Kill-and-resume round: same fault plan, but with periodic
        // checkpoint emission.  Kill at a seed-chosen checkpoint, push it
        // through the disk format, resume on a fresh cache, and demand the
        // sequential statistics and plane bytes again.
        std::vector<replay::ShardedCheckpoint> cps;
        Cache ck_cache(1024, 0x7A);
        const auto ck_rep = replay::replay_sharded_checkpointed(
            ck_cache, span, cfg, /*every_batches=*/64 + seed % 96,
            [&](replay::ShardedCheckpoint&& cp) {
                cps.push_back(std::move(cp));
            },
            faults);
        if (!(ck_rep.stats == seq) || cps.empty()) {
            std::fprintf(stderr,
                         "\nchaos seed %llu: checkpointed run diverged "
                         "(ops %llu/%llu, %zu checkpoints); re-run with "
                         "P4LRU_CHAOS_SEEDS=%llu\n",
                         static_cast<unsigned long long>(seed),
                         static_cast<unsigned long long>(ck_rep.stats.ops),
                         static_cast<unsigned long long>(seq.ops), cps.size(),
                         static_cast<unsigned long long>(seed));
            return 1;
        }
        const auto& cp = cps[seed % cps.size()];
        const auto path = scratch.file("p4lru_chaos_ckpt_" +
                                       std::to_string(seed) + ".bin");
        if (const auto st = replay::write_checkpoint(path, cp); !st.is_ok()) {
            std::fprintf(stderr, "\nchaos seed %llu: write_checkpoint: %s\n",
                         static_cast<unsigned long long>(seed),
                         st.to_string().c_str());
            return 1;
        }
        auto rd = replay::read_checkpoint_checked(path);
        if (!rd.is_ok()) {
            std::fprintf(stderr,
                         "\nchaos seed %llu: read_checkpoint_checked: %s\n",
                         static_cast<unsigned long long>(seed),
                         rd.status().to_string().c_str());
            return 1;
        }
        Cache resumed(1024, 0x7A);
        const auto res =
            replay::resume_sharded(resumed, span, rd.value(), cfg, faults);
        if (!res.is_ok() || !(res.value().stats == seq)) {
            std::fprintf(
                stderr,
                "\nchaos seed %llu: resume from disk checkpoint at cursor "
                "%llu diverged (%s); re-run with P4LRU_CHAOS_SEEDS=%llu\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(cp.base.cursor),
                res.is_ok() ? "stats mismatch"
                            : res.status().to_string().c_str(),
                static_cast<unsigned long long>(seed));
            return 1;
        }
        std::vector<std::byte> want, got;
        seq_cache.materialize();
        resumed.materialize();
        seq_cache.storage().save_planes(want);
        resumed.storage().save_planes(got);
        if (want != got) {
            std::fprintf(stderr,
                         "\nchaos seed %llu: resumed plane bytes differ from "
                         "sequential; re-run with P4LRU_CHAOS_SEEDS=%llu\n",
                         static_cast<unsigned long long>(seed),
                         static_cast<unsigned long long>(seed));
            return 1;
        }

        // Supervised crash-recovery round: same ops, same engine faults,
        // but driven through the durable store with three deterministic
        // crashes.  Every crash abandons the run's in-memory cache; the
        // supervisor must restore from the newest valid generation and the
        // final stats + plane bytes must still be bit-identical.
        const std::string store_dir =
            store_base.empty()
                ? scratch.file("store-" + std::to_string(seed))
                : store_base + "/seed-" + std::to_string(seed);
        if (!store_base.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(store_base, ec);
        }
        // The supervised round runs fully instrumented: one Registry wired
        // through the supervisor, the replay engine and the durable store,
        // with a background sampler appending snapshots to the store
        // directory (CI later re-reads the JSONL with p4lru_metrics).
        obs::Registry reg;
        replay::DurableStoreConfig store_cfg;
        store_cfg.retain = 3;
        store_cfg.sync = false;  // smoke: correctness, not disk endurance
        store_cfg.metrics = &reg;
        replay::DurableStore store(store_dir, store_cfg);
        replay::ShardedConfig sup_cfg = cfg;
        sup_cfg.metrics = &reg;

        constexpr std::array kPoints = {fault::CrashPoint::kTornTemp,
                                        fault::CrashPoint::kTornInstall,
                                        fault::CrashPoint::kBeforeRename};
        fault::FaultPlan crash_plan;
        std::uint64_t at = 1 + seed % 3;
        for (std::size_t i = 0; i < kPoints.size(); ++i) {
            crash_plan.crash(at, kPoints[(seed + i) % kPoints.size()],
                             /*section=*/(seed >> i) % 3);
            at += 2 + (seed >> (8 + 4 * i)) % 4;
        }

        std::deque<Cache> lives;  // one cache per supervisor attempt
        auto factory = [&lives] {
            lives.emplace_back(1024, 0x7A);
            return replay::CacheReplayTarget<Cache, FlowKey, std::uint32_t>(
                lives.back());
        };
        replay::SupervisorConfig sup;
        sup.every_batches = 16 + seed % 17;
        sup.max_attempts = 8;
        sup.metrics = &reg;
        obs::SamplerConfig samp_cfg;
        samp_cfg.period_ms = 20;
        samp_cfg.jsonl_path = store_dir + "/metrics.jsonl";
        {
            // The store creates its directory lazily on first install; the
            // sampler appends from construction, so make it now.
            std::error_code ec;
            std::filesystem::create_directories(store_dir, ec);
        }
        obs::Sampler sampler(reg, samp_cfg);
        const auto sv = replay::run_supervised(factory, span, sup_cfg, store,
                                               sup, crash_plan, faults);
        sampler.stop();  // final snapshot carries the run's totals
        if (!sv.is_ok() || !(sv.value().report.stats == seq)) {
            std::fprintf(
                stderr,
                "\nchaos seed %llu: supervised run %s; re-run with "
                "P4LRU_CHAOS_SEEDS=%llu\n",
                static_cast<unsigned long long>(seed),
                sv.is_ok() ? "stats diverge from sequential"
                           : sv.status().to_string().c_str(),
                static_cast<unsigned long long>(seed));
            return 1;
        }
        if (sv.value().crashes != kPoints.size() ||
            sv.value().resumed_from_gen == 0) {
            std::fprintf(
                stderr,
                "\nchaos seed %llu: supervisor survived %zu/%zu crashes, "
                "resumed from gen %llu — crash plan did not exercise "
                "recovery; re-run with P4LRU_CHAOS_SEEDS=%llu\n",
                static_cast<unsigned long long>(seed), sv.value().crashes,
                kPoints.size(),
                static_cast<unsigned long long>(sv.value().resumed_from_gen),
                static_cast<unsigned long long>(seed));
            return 1;
        }
        Cache& survivor = lives.back();
        survivor.materialize();
        got.clear();
        survivor.storage().save_planes(got);
        if (want != got) {
            std::fprintf(stderr,
                         "\nchaos seed %llu: supervised plane bytes differ "
                         "from sequential; re-run with "
                         "P4LRU_CHAOS_SEEDS=%llu\n",
                         static_cast<unsigned long long>(seed),
                         static_cast<unsigned long long>(seed));
            return 1;
        }
        crashes_survived += sv.value().crashes;

        // Observability self-check: every JSONL record the sampler wrote
        // must parse with the library's own reader, and the final
        // snapshot's supervisor counters must equal the SupervisedReport —
        // the metrics plane and the report plane never disagree.
        {
            std::FILE* mf = std::fopen(samp_cfg.jsonl_path.c_str(), "rb");
            if (mf == nullptr) {
                std::fprintf(stderr,
                             "\nchaos seed %llu: sampler wrote no JSONL at "
                             "%s\n",
                             static_cast<unsigned long long>(seed),
                             samp_cfg.jsonl_path.c_str());
                return 1;
            }
            std::string text;
            char buf[1 << 14];
            std::size_t n = 0;
            while ((n = std::fread(buf, 1, sizeof(buf), mf)) > 0) {
                text.append(buf, n);
            }
            std::fclose(mf);
            obs::Snapshot last;
            std::size_t records = 0, start = 0;
            while (start < text.size()) {
                std::size_t nl = text.find('\n', start);
                if (nl == std::string::npos) nl = text.size();
                if (nl > start) {
                    const auto parsed = obs::parse_snapshot_json(
                        std::string_view(text).substr(start, nl - start));
                    if (!parsed.is_ok()) {
                        std::fprintf(
                            stderr,
                            "\nchaos seed %llu: metrics JSONL record %zu "
                            "unparseable: %s\n",
                            static_cast<unsigned long long>(seed), records,
                            parsed.status().to_string().c_str());
                        return 1;
                    }
                    last = parsed.value();
                    ++records;
                }
                start = nl + 1;
            }
            const std::uint64_t* mc = last.counter("supervisor_crashes");
            const std::uint64_t* ma = last.counter("supervisor_attempts");
            const std::uint64_t* mi = last.counter("supervisor_installs");
            if (records == 0 || mc == nullptr || ma == nullptr ||
                mi == nullptr || *mc != sv.value().crashes ||
                *ma != sv.value().attempts || *mi != sv.value().installs) {
                std::fprintf(
                    stderr,
                    "\nchaos seed %llu: metrics disagree with the "
                    "SupervisedReport (crashes %llu/%zu attempts %llu/%zu "
                    "installs %llu/%llu over %zu records)\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(mc ? *mc : 0),
                    sv.value().crashes,
                    static_cast<unsigned long long>(ma ? *ma : 0),
                    sv.value().attempts,
                    static_cast<unsigned long long>(mi ? *mi : 0),
                    static_cast<unsigned long long>(sv.value().installs),
                    records);
                return 1;
            }
        }

        // Streamed I/O-fault round: the same engine chaos plan, but the ops
        // now arrive through a chunked background reader whose freads are
        // themselves faulted with seed-chosen short reads, EINTR storms and
        // stalls.  Neither layer's misbehavior may move one bit of the
        // statistics — and the obs counters must prove the faults fired.
        {
            trace::ChunkedSourceOptions sopts;
            sopts.chunk_records = 4'096 + seed % 4'099;
            fault::FaultPlan io_plan;
            io_plan.short_read(seed % 8)
                .eintr_read((seed >> 4) % 8, 1 + seed % 3)
                .slow_reader((seed >> 8) % 8, 50 + seed % 200);
            sopts.faults = &io_plan;
            obs::Registry io_reg;
            sopts.metrics = &io_reg;
            auto src = trace::ChunkedFileSource::open(trace_path, sopts);
            if (!src.is_ok()) {
                std::fprintf(stderr,
                             "\nchaos seed %llu: chunked open: %s\n",
                             static_cast<unsigned long long>(seed),
                             src.status().to_string().c_str());
                return 1;
            }
            auto stream = replay::packet_op_source(*src.value());
            Cache io_cache(1024, 0x7A);
            const auto io_rep =
                replay::replay_sharded_stream(io_cache, stream, cfg, faults);
            if (!io_rep.is_ok() || !(io_rep.value().stats == seq)) {
                std::fprintf(
                    stderr,
                    "\nchaos seed %llu: streamed I/O-fault round %s "
                    "(ops %llu/%llu); re-run with P4LRU_CHAOS_SEEDS=%llu\n",
                    static_cast<unsigned long long>(seed),
                    io_rep.is_ok() ? "diverged from sequential"
                                   : io_rep.status().to_string().c_str(),
                    static_cast<unsigned long long>(
                        io_rep.is_ok() ? io_rep.value().stats.ops : 0),
                    static_cast<unsigned long long>(seq.ops),
                    static_cast<unsigned long long>(seed));
                return 1;
            }
            const auto io_snap = io_reg.snapshot();
            const std::uint64_t* shorts =
                io_snap.counter("trace_reader_short_reads");
            const std::uint64_t* eintrs =
                io_snap.counter("trace_reader_eintr_retries");
            if (shorts == nullptr || *shorts == 0 || eintrs == nullptr ||
                *eintrs == 0) {
                std::fprintf(
                    stderr,
                    "\nchaos seed %llu: injected reader faults never fired "
                    "(short_reads=%llu eintr_retries=%llu)\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(shorts ? *shorts : 0),
                    static_cast<unsigned long long>(eintrs ? *eintrs : 0));
                return 1;
            }
        }

        std::printf(
            "ok (drained_inline=%zu abandoned=%zu waits=%llu; resumed from "
            "checkpoint %zu/%zu at cursor %llu; supervised: %zu attempts, "
            "%zu crashes, %llu installs, gen %llu restored)\n",
            rep.drained_inline, rep.abandoned_workers,
            static_cast<unsigned long long>(rep.backpressure_waits),
            static_cast<std::size_t>(seed % cps.size()) + 1, cps.size(),
            static_cast<unsigned long long>(cp.base.cursor),
            sv.value().attempts, sv.value().crashes,
            static_cast<unsigned long long>(sv.value().installs),
            static_cast<unsigned long long>(sv.value().resumed_from_gen));
    }
    std::printf(
        "fault_chaos_smoke: %zu seeds, %zu degraded rounds, %zu injected "
        "crashes survived, all bit-identical to sequential incl. "
        "disk-checkpoint resume, supervised crash recovery and streamed "
        "I/O-fault replay (%llu ops, %llu hits)\n",
        seeds.size(), degraded_rounds, crashes_survived,
        static_cast<unsigned long long>(seq.ops),
        static_cast<unsigned long long>(seq.hits));
    return 0;
}
