// Standalone chaos smoke for the hardened replay engine: 10 random
// fault-plan seeds (stalls + delays against tiny rings), each checked for
// bit-identical statistics and contents against sequential replay.  Every
// seed is printed before its round, so a failure names the exact FaultPlan
// to replay (`P4LRU_CHAOS_SEEDS=<s1>,<s2>,...` re-runs chosen seeds).
// Built as its own binary (fault_chaos_smoke) so CI can run it nightly-style
// with fresh entropy while the gtest suite stays deterministic.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <span>
#include <vector>

#include "p4lru/core/p4lru.hpp"
#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/replay/replay.hpp"
#include "p4lru/trace/trace_gen.hpp"

namespace {

std::vector<std::uint64_t> pick_seeds() {
    if (const char* env = std::getenv("P4LRU_CHAOS_SEEDS")) {
        std::vector<std::uint64_t> seeds;
        const char* p = env;
        while (*p != '\0') {
            char* end = nullptr;
            const auto v = std::strtoull(p, &end, 10);
            if (end == p) break;
            seeds.push_back(v);
            p = (*end == ',') ? end + 1 : end;
        }
        if (!seeds.empty()) return seeds;
    }
    std::random_device rd;
    std::vector<std::uint64_t> seeds(10);
    for (auto& s : seeds) {
        s = (static_cast<std::uint64_t>(rd()) << 32) | rd();
    }
    return seeds;
}

}  // namespace

int main() {
    using namespace p4lru;
    using Cache = core::ParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>,
                                      FlowKey, std::uint32_t>;

    trace::TraceConfig tcfg;
    tcfg.seed = 13;
    tcfg.total_packets = 100'000;
    tcfg.segments = 4;
    const auto trace = trace::generate_trace(tcfg);
    const auto ops = replay::ops_from_packets(trace);
    const auto span =
        std::span<const replay::ReplayOp<FlowKey, std::uint32_t>>(ops);

    Cache seq_cache(1024, 0x7A);
    const auto seq = replay::replay_sequential(seq_cache, span);

    replay::ShardedConfig cfg;
    cfg.shards = 4;
    cfg.batch_ops = 64;
    cfg.queue_batches = 4;
    cfg.mode = replay::Mode::kThreaded;
    cfg.robust.push_deadline_us = 100;
    cfg.robust.stall_timeout_us = 2'000;

    fault::ChaosSpec spec;
    spec.shards = 4;
    spec.batches = 32;
    spec.stalls = 2;
    spec.delays = 4;
    spec.max_delay_us = 500;

    const auto seeds = pick_seeds();
    std::size_t degraded_rounds = 0;
    for (const auto seed : seeds) {
        std::printf("chaos seed %llu ... ",
                    static_cast<unsigned long long>(seed));
        std::fflush(stdout);
        const auto plan = fault::FaultPlan::chaos(seed, spec);
        const fault::InjectedFaults faults(plan);
        Cache cache(1024, 0x7A);
        const auto rep = replay::replay_sharded(cache, span, cfg, faults);
        if (!(rep.stats == seq)) {
            std::fprintf(
                stderr,
                "\nchaos seed %llu: stats diverge from sequential "
                "(ops %llu/%llu hits %llu/%llu); re-run with "
                "P4LRU_CHAOS_SEEDS=%llu\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(rep.stats.ops),
                static_cast<unsigned long long>(seq.ops),
                static_cast<unsigned long long>(rep.stats.hits),
                static_cast<unsigned long long>(seq.hits),
                static_cast<unsigned long long>(seed));
            return 1;
        }
        if (rep.degraded()) ++degraded_rounds;
        std::printf("ok (drained_inline=%zu abandoned=%zu waits=%llu)\n",
                    rep.drained_inline, rep.abandoned_workers,
                    static_cast<unsigned long long>(rep.backpressure_waits));
    }
    std::printf(
        "fault_chaos_smoke: %zu seeds, %zu degraded rounds, all "
        "bit-identical to sequential (%llu ops, %llu hits)\n",
        seeds.size(), degraded_rounds,
        static_cast<unsigned long long>(seq.ops),
        static_cast<unsigned long long>(seq.hits));
    return 0;
}
