// FaultPlan: the deterministic fault vocabulary — builders, queries, seeded
// chaos generation, and the zero-cost NoFaults contract.
#include "p4lru/fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>

namespace p4lru::fault {
namespace {

TEST(FaultPlan, EmptyPlanInjectsNothing) {
    const FaultPlan p;
    EXPECT_TRUE(p.empty());
    EXPECT_FALSE(p.worker_parks(0, 0));
    EXPECT_EQ(p.batch_delay_us(0, 0), 0u);
    EXPECT_TRUE(p.op_events().empty());
}

TEST(FaultPlan, StallParksFromItsBatchOnward) {
    FaultPlan p;
    p.stall_worker(/*shard=*/2, /*at_batch=*/5);
    EXPECT_FALSE(p.worker_parks(2, 4));
    EXPECT_TRUE(p.worker_parks(2, 5));
    EXPECT_TRUE(p.worker_parks(2, 100));
    EXPECT_FALSE(p.worker_parks(1, 100)) << "other shards unaffected";
}

TEST(FaultPlan, DelaysAccumulatePerBatch) {
    FaultPlan p;
    p.delay_batch(0, 3, 100).delay_batch(0, 3, 50).delay_batch(0, 4, 7);
    EXPECT_EQ(p.batch_delay_us(0, 3), 150u);
    EXPECT_EQ(p.batch_delay_us(0, 4), 7u);
    EXPECT_EQ(p.batch_delay_us(0, 5), 0u);
    EXPECT_EQ(p.batch_delay_us(1, 3), 0u);
}

TEST(FaultPlan, OpEventsStaySortedByIndex) {
    FaultPlan p;
    p.corrupt_meta(7, /*at_op=*/500, 0b01);
    p.corrupt_op(/*at_op=*/100, 0xFF);
    p.corrupt_key(3, /*at_op=*/300, 0x0101);
    const auto& evs = p.op_events();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs[0].at, 100u);
    EXPECT_EQ(evs[1].at, 300u);
    EXPECT_EQ(evs[2].at, 500u);
}

TEST(FaultPlan, ChaosIsSeedDeterministic) {
    ChaosSpec spec;
    spec.stalls = 3;
    spec.delays = 5;
    const auto a = FaultPlan::chaos(42, spec);
    const auto b = FaultPlan::chaos(42, spec);
    EXPECT_EQ(a.worker_events(), b.worker_events());

    const auto c = FaultPlan::chaos(43, spec);
    EXPECT_NE(a.worker_events(), c.worker_events())
        << "different seeds should explore different fault placements";
    EXPECT_EQ(a.worker_events().size(), spec.stalls + spec.delays);
}

TEST(NoFaults, IsZeroCostByConstruction) {
    static_assert(std::is_empty_v<NoFaults>);
    static_assert(!NoFaults::kEnabled);
    // All hooks are constexpr no-ops — usable in constant evaluation.
    static_assert(!NoFaults::worker_parks(0, 0));
    static_assert(NoFaults::batch_delay_us(0, 0) == 0);
}

TEST(InjectedFaults, MutateKeyFlipsExactlyTheScheduledOps) {
    FaultPlan p;
    p.corrupt_op(10, 0xFF00).corrupt_op(20, 0x1);
    const InjectedFaults f(p);

    std::uint64_t k = 0xABCD;
    f.mutate_key(9, k);
    EXPECT_EQ(k, 0xABCDu) << "unscheduled index untouched";
    f.mutate_key(10, k);
    EXPECT_EQ(k, 0xABCDu ^ 0xFF00u);
    f.mutate_key(20, k);
    EXPECT_EQ(k, (0xABCDu ^ 0xFF00u) ^ 0x1u);
}

TEST(InjectedFaults, MutateKeyIsInvolutionUnderSameMask) {
    FaultPlan p;
    p.corrupt_op(0, 0xDEADBEEF);
    const InjectedFaults f(p);
    std::uint32_t k = 1234;
    f.mutate_key(0, k);
    EXPECT_NE(k, 1234u);
    f.mutate_key(0, k);
    EXPECT_EQ(k, 1234u);
}

TEST(FlakyService, DeterministicAndBoundedFailures) {
    const FlakyService svc(/*seed=*/7, /*period=*/10, /*fails=*/2);
    std::size_t incidents = 0;
    for (std::uint64_t seq = 0; seq < 10'000; ++seq) {
        const bool first = svc.fails(seq, 0);
        EXPECT_EQ(first, svc.fails(seq, 0)) << "must be pure";
        EXPECT_EQ(first, svc.is_incident(seq));
        if (first) {
            ++incidents;
            EXPECT_TRUE(svc.fails(seq, 1)) << "fails twice per incident";
            EXPECT_FALSE(svc.fails(seq, 2)) << "third attempt succeeds";
        } else {
            EXPECT_FALSE(svc.fails(seq, 1));
        }
    }
    // ~1/10 of requests are incidents; allow generous slack.
    EXPECT_GT(incidents, 500u);
    EXPECT_LT(incidents, 2000u);
}

TEST(FlakyService, ZeroPeriodNeverFails) {
    const FlakyService svc(7, 0, 3);
    for (std::uint64_t seq = 0; seq < 1'000; ++seq) {
        EXPECT_FALSE(svc.fails(seq, 0));
    }
}

}  // namespace
}  // namespace p4lru::fault
