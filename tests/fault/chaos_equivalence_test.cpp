// Chaos equivalence: the hardened replay engine must produce bit-identical
// statistics and final cache state to sequential replay even while workers
// are being stalled, delayed and starved of queue space — the watchdog /
// inline-drain takeover preserves per-unit arrival order, and this suite is
// that claim under test (ISSUE acceptance: chaos equivalence on Zipf and
// YCSB).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "p4lru/core/p4lru.hpp"
#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/replay/replay.hpp"
#include "p4lru/trace/trace_gen.hpp"
#include "p4lru/trace/ycsb.hpp"

namespace p4lru::replay {
namespace {

using FlowCache =
    core::ParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                        std::uint32_t>;
using KeyCache =
    core::ParallelCache<core::P4lru<std::uint64_t, std::uint64_t, 3>,
                        std::uint64_t, std::uint64_t>;

template <typename CacheA, typename CacheB>
void expect_same_contents(const CacheA& a, const CacheB& b) {
    ASSERT_EQ(a.unit_count(), b.unit_count());
    for (std::size_t u = 0; u < a.unit_count(); ++u) {
        const auto& ua = a.unit(u);
        const auto& ub = b.unit(u);
        ASSERT_EQ(ua.size(), ub.size()) << "unit " << u;
        for (std::size_t i = 1; i <= ua.size(); ++i) {
            EXPECT_EQ(ua.key_at(i), ub.key_at(i)) << "unit " << u;
            EXPECT_EQ(ua.value_at(i), ub.value_at(i)) << "unit " << u;
        }
    }
}

std::vector<ReplayOp<FlowKey, std::uint32_t>> zipf_ops() {
    trace::TraceConfig cfg;
    cfg.seed = 77;
    cfg.total_packets = 120'000;
    cfg.segments = 4;
    return ops_from_packets(trace::generate_trace(cfg));
}

std::vector<ReplayOp<std::uint64_t, std::uint64_t>> ycsb_ops() {
    trace::YcsbConfig cfg;
    cfg.seed = 99;
    cfg.items = 200'000;
    cfg.zipf_alpha = 0.9;
    trace::YcsbWorkload wl(cfg);
    std::vector<ReplayOp<std::uint64_t, std::uint64_t>> ops;
    ops.reserve(80'000);
    for (const auto& op : wl.generate(80'000)) {
        ops.push_back({op.key, op.key * 2 + 1});
    }
    return ops;
}

/// Chaos config: small batches + a tiny ring so a parked worker quickly
/// turns into dispatcher backpressure, and a fast watchdog so tests don't
/// dawdle.
ShardedConfig chaos_config(std::size_t shards) {
    ShardedConfig cfg;
    cfg.shards = shards;
    cfg.batch_ops = 64;
    cfg.queue_batches = 4;
    cfg.mode = Mode::kThreaded;
    cfg.robust.push_deadline_us = 100;
    cfg.robust.stall_timeout_us = 2'000;
    return cfg;
}

TEST(ChaosEquivalence, StalledWorkerIsDrainedInlineZipf) {
    const auto ops = zipf_ops();
    FlowCache seq_cache(1024, 0xC0);
    const auto seq = replay_sequential(
        seq_cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops));

    fault::FaultPlan plan;
    plan.stall_worker(/*shard=*/0, /*at_batch=*/0);  // dead from the start
    plan.stall_worker(/*shard=*/2, /*at_batch=*/8);  // dies mid-run
    const fault::InjectedFaults faults(plan);

    FlowCache cache(1024, 0xC0);
    const auto rep = replay_sharded(
        cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops),
        chaos_config(4), faults);

    EXPECT_GE(rep.drained_inline, 1u);
    EXPECT_TRUE(rep.degraded());
    EXPECT_EQ(rep.stats, seq) << "degraded run must stay bit-identical";
    expect_same_contents(seq_cache, cache);
}

TEST(ChaosEquivalence, StalledWorkerIsDrainedInlineYcsb) {
    const auto ops = ycsb_ops();
    KeyCache seq_cache(2048, 0xF1);
    const auto seq = replay_sequential(
        seq_cache,
        std::span<const ReplayOp<std::uint64_t, std::uint64_t>>(ops));

    fault::FaultPlan plan;
    plan.stall_worker(1, 0);
    const fault::InjectedFaults faults(plan);

    KeyCache cache(2048, 0xF1);
    const auto rep = replay_sharded(
        cache, std::span<const ReplayOp<std::uint64_t, std::uint64_t>>(ops),
        chaos_config(4), faults);

    EXPECT_GE(rep.drained_inline, 1u);
    EXPECT_EQ(rep.stats, seq);
    expect_same_contents(seq_cache, cache);
}

TEST(ChaosEquivalence, DelayedBatchesOnlySlowThingsDown) {
    const auto ops = zipf_ops();
    FlowCache seq_cache(1024, 0xD1);
    const auto seq = replay_sequential(
        seq_cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops));

    fault::FaultPlan plan;
    for (std::uint64_t b = 0; b < 8; ++b) {
        plan.delay_batch(/*shard=*/b % 4, /*at_batch=*/b * 3, /*micros=*/300);
    }
    const fault::InjectedFaults faults(plan);

    FlowCache cache(1024, 0xD1);
    const auto rep = replay_sharded(
        cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops),
        chaos_config(4), faults);

    EXPECT_EQ(rep.stats, seq);
    expect_same_contents(seq_cache, cache);
}

TEST(ChaosEquivalence, EveryWorkerDeadStillCompletes) {
    const auto ops = zipf_ops();
    FlowCache seq_cache(512, 0xA7);
    const auto seq = replay_sequential(
        seq_cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops));

    fault::FaultPlan plan;
    for (std::uint32_t s = 0; s < 4; ++s) plan.stall_worker(s, 0);
    const fault::InjectedFaults faults(plan);

    FlowCache cache(512, 0xA7);
    const auto rep = replay_sharded(
        cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops),
        chaos_config(4), faults);

    EXPECT_EQ(rep.stats, seq)
        << "with all workers parked the dispatcher runs the whole replay";
    expect_same_contents(seq_cache, cache);
}

TEST(ChaosEquivalence, WatchdogAbandonsWorkerStalledMidSleep) {
    const auto ops = zipf_ops();
    FlowCache seq_cache(1024, 0xB3);
    const auto seq = replay_sequential(
        seq_cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops));

    // A sleep far past the stall timeout wedges the worker while the tiny
    // ring fills: the watchdog must abandon it and finish its shard inline.
    fault::FaultPlan plan;
    plan.delay_batch(/*shard=*/0, /*at_batch=*/2, /*micros=*/50'000);
    const fault::InjectedFaults faults(plan);

    FlowCache cache(1024, 0xB3);
    auto cfg = chaos_config(4);
    cfg.robust.stall_timeout_us = 1'000;
    const auto rep = replay_sharded(
        cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops), cfg,
        faults);

    EXPECT_GE(rep.abandoned_workers, 1u);
    EXPECT_GE(rep.drained_inline, 1u);
    // The park-ack wait is backoff sleeps now, not a busy spin, and the
    // slept time is accounted: the worker was mid-50ms-sleep when the
    // watchdog abandoned it, so the dispatcher must have waited.
    EXPECT_GT(rep.park_wait_us, 0u);
    EXPECT_EQ(rep.stats, seq);
    expect_same_contents(seq_cache, cache);
}

TEST(ChaosEquivalence, SeededChaosPlansStayEquivalent) {
    const auto ops = zipf_ops();
    FlowCache seq_cache(1024, 0x5C);
    const auto seq = replay_sequential(
        seq_cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops));

    fault::ChaosSpec spec;
    spec.shards = 4;
    spec.batches = 16;
    spec.stalls = 1;
    spec.delays = 3;
    spec.max_delay_us = 500;

    for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
        const auto plan = fault::FaultPlan::chaos(seed, spec);
        const fault::InjectedFaults faults(plan);
        FlowCache cache(1024, 0x5C);
        const auto rep = replay_sharded(
            cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops),
            chaos_config(4), faults);
        EXPECT_EQ(rep.stats, seq) << "chaos seed " << seed;
        expect_same_contents(seq_cache, cache);
    }
}

TEST(ChaosEquivalence, NoFaultsRunReportsHealthy) {
    const auto ops = zipf_ops();
    FlowCache cache(1024, 0xE2);
    auto cfg = chaos_config(4);
    // Generous watchdog so a descheduled-but-healthy worker on a loaded CI
    // box is never mistaken for a dead one.
    cfg.robust.stall_timeout_us = 500'000;
    const auto rep = replay_sharded(
        cache, std::span<const ReplayOp<FlowKey, std::uint32_t>>(ops), cfg);
    EXPECT_EQ(rep.abandoned_workers, 0u);
    EXPECT_FALSE(rep.degraded());
}

}  // namespace
}  // namespace p4lru::replay
