#include "p4lru/index/record_store.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace p4lru::index {
namespace {

std::vector<std::uint8_t> payload(std::size_t n, std::uint8_t fill) {
    return std::vector<std::uint8_t>(n, fill);
}

TEST(RecordStore, AllocateReturns64ByteAlignedAddresses) {
    RecordStore s;
    const auto a1 = s.allocate(payload(10, 1));
    const auto a2 = s.allocate(payload(10, 2));
    EXPECT_EQ(a1 % RecordStore::kRecordBytes, 0u);
    EXPECT_EQ(a2, a1 + RecordStore::kRecordBytes);
    EXPECT_NE(a1, kNullRecord);
}

TEST(RecordStore, AddressesFitIn48Bits) {
    RecordStore s;
    const auto a = s.allocate(payload(1, 0));
    EXPECT_EQ(a & ~kAddressMask, 0u);
}

TEST(RecordStore, ReadBackWhatWasWritten) {
    RecordStore s;
    const auto a = s.allocate(payload(64, 0xAB));
    const auto& r = s.read(a);
    for (const auto b : r) EXPECT_EQ(b, 0xAB);
}

TEST(RecordStore, ShortPayloadIsZeroPadded) {
    RecordStore s;
    const auto a = s.allocate(payload(4, 0xFF));
    const auto& r = s.read(a);
    EXPECT_EQ(r[3], 0xFF);
    EXPECT_EQ(r[4], 0x00);
    EXPECT_EQ(r[63], 0x00);
}

TEST(RecordStore, LongPayloadIsTruncated) {
    RecordStore s;
    const auto a = s.allocate(payload(100, 0x11));
    EXPECT_EQ(s.read(a)[63], 0x11);
}

TEST(RecordStore, WriteOverwrites) {
    RecordStore s;
    const auto a = s.allocate(payload(64, 1));
    s.write(a, payload(64, 2));
    EXPECT_EQ(s.read(a)[0], 2);
}

TEST(RecordStore, InvalidAddressesThrow) {
    RecordStore s;
    s.allocate(payload(1, 0));
    EXPECT_THROW(s.read(kNullRecord), std::out_of_range);
    EXPECT_THROW(s.read(7), std::out_of_range);    // misaligned
    EXPECT_THROW(s.read(640), std::out_of_range);  // beyond store
}

TEST(RecordStore, ValidPredicate) {
    RecordStore s;
    const auto a = s.allocate(payload(1, 0));
    EXPECT_TRUE(s.valid(a));
    EXPECT_FALSE(s.valid(kNullRecord));
    EXPECT_FALSE(s.valid(a + 1));
    EXPECT_FALSE(s.valid(a + RecordStore::kRecordBytes));
}

TEST(RecordStore, MemoryAccounting) {
    RecordStore s;
    s.allocate(payload(1, 0));
    s.allocate(payload(1, 0));
    EXPECT_EQ(s.count(), 2u);
    EXPECT_EQ(s.memory_bytes(), 128u);
}

}  // namespace
}  // namespace p4lru::index
