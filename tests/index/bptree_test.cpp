#include "p4lru/index/bptree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "p4lru/common/random.hpp"

namespace p4lru::index {
namespace {

TEST(BPlusTree, EmptyTreeFindsNothing) {
    BPlusTree<std::uint64_t, int> t;
    EXPECT_FALSE(t.find(1).value.has_value());
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.height(), 1u);
    EXPECT_TRUE(t.validate());
}

TEST(BPlusTree, InsertAndFindSequential) {
    BPlusTree<std::uint64_t, std::uint64_t, 8> t;
    for (std::uint64_t k = 0; k < 1000; ++k) t.insert(k, k * 7);
    EXPECT_EQ(t.size(), 1000u);
    EXPECT_TRUE(t.validate());
    for (std::uint64_t k = 0; k < 1000; ++k) {
        ASSERT_EQ(t.find(k).value, std::optional<std::uint64_t>(k * 7)) << k;
    }
    EXPECT_FALSE(t.find(1000).value.has_value());
}

TEST(BPlusTree, InsertReverseOrder) {
    BPlusTree<std::uint64_t, int, 8> t;
    for (std::uint64_t k = 500; k > 0; --k) t.insert(k, static_cast<int>(k));
    EXPECT_TRUE(t.validate());
    for (std::uint64_t k = 1; k <= 500; ++k) {
        ASSERT_TRUE(t.find(k).value.has_value()) << k;
    }
}

TEST(BPlusTree, OverwriteKeepsSizeStable) {
    BPlusTree<std::uint64_t, int> t;
    t.insert(5, 1);
    t.insert(5, 2);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.find(5).value, std::optional<int>(2));
}

TEST(BPlusTree, RandomInsertsMatchStdMap) {
    BPlusTree<std::uint64_t, std::uint64_t, 16> t;
    std::map<std::uint64_t, std::uint64_t> ref;
    rng::Xoshiro256 rng(4);
    for (int i = 0; i < 20'000; ++i) {
        const std::uint64_t k = rng.between(0, 5000);
        const std::uint64_t v = rng.next();
        t.insert(k, v);
        ref[k] = v;
    }
    EXPECT_TRUE(t.validate());
    EXPECT_EQ(t.size(), ref.size());
    for (const auto& [k, v] : ref) {
        ASSERT_EQ(t.find(k).value, std::optional<std::uint64_t>(v)) << k;
    }
}

TEST(BPlusTree, HeightGrowsLogarithmically) {
    BPlusTree<std::uint64_t, int, 64> t;
    for (std::uint64_t k = 0; k < 100'000; ++k) t.insert(k, 0);
    // Fanout 64 and 1e5 keys: height must be small.
    EXPECT_LE(t.height(), 4u);
    EXPECT_GE(t.height(), 2u);
}

TEST(BPlusTree, NodeHopsEqualsHeight) {
    BPlusTree<std::uint64_t, int, 8> t;
    for (std::uint64_t k = 0; k < 5000; ++k) t.insert(k, 0);
    const auto fr = t.find(1234);
    EXPECT_EQ(fr.node_hops, t.height());
}

TEST(BPlusTree, ForEachVisitsKeysInOrder) {
    BPlusTree<std::uint64_t, std::uint64_t, 8> t;
    rng::Xoshiro256 rng(8);
    std::map<std::uint64_t, std::uint64_t> ref;
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t k = rng.next() % 100'000;
        t.insert(k, k + 1);
        ref[k] = k + 1;
    }
    std::vector<std::uint64_t> visited;
    t.for_each([&](std::uint64_t k, std::uint64_t v) {
        EXPECT_EQ(v, k + 1);
        visited.push_back(k);
    });
    EXPECT_EQ(visited.size(), ref.size());
    EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
}

TEST(BPlusTree, SmallFanoutStressValidates) {
    BPlusTree<std::uint32_t, std::uint32_t, 4> t;  // minimum fanout
    rng::Xoshiro256 rng(5);
    for (int i = 0; i < 5000; ++i) {
        t.insert(static_cast<std::uint32_t>(rng.between(0, 2000)), 1);
        if (i % 500 == 0) ASSERT_TRUE(t.validate()) << "at " << i;
    }
    EXPECT_TRUE(t.validate());
}

TEST(BPlusTree, ContainsConvenience) {
    BPlusTree<std::uint64_t, int> t;
    t.insert(9, 1);
    EXPECT_TRUE(t.contains(9));
    EXPECT_FALSE(t.contains(10));
}

}  // namespace
}  // namespace p4lru::index
