#include <gtest/gtest.h>

#include <map>

#include "p4lru/common/random.hpp"
#include "p4lru/common/zipf.hpp"
#include "p4lru/sketch/coco_sketch.hpp"
#include "p4lru/sketch/elastic_sketch.hpp"

namespace p4lru::sketch {
namespace {

TEST(ElasticSketch, RejectsBadConfig) {
    using ES = ElasticSketch<std::uint32_t>;
    EXPECT_THROW(ES(0, 8, 1), std::invalid_argument);
    EXPECT_THROW(ES(8, 0, 1), std::invalid_argument);
    EXPECT_THROW(ES(8, 8, 1, 0), std::invalid_argument);
}

TEST(ElasticSketch, TracksSingleFlowExactly) {
    ElasticSketch<std::uint32_t> es(64, 256, 1);
    for (int i = 0; i < 100; ++i) es.add(7, 1);
    EXPECT_TRUE(es.heavy_hit(7));
    EXPECT_EQ(es.estimate(7), 100u);
}

TEST(ElasticSketch, ElephantsStayResidentUnderMouseNoise) {
    ElasticSketch<std::uint32_t> es(1, 512, 2, 8);  // single bucket
    // The elephant builds votes first.
    for (int i = 0; i < 1000; ++i) es.add(1, 1);
    // 500 distinct mice each hit once: negative grows to 500 < 8*1000.
    for (std::uint32_t m = 2; m < 502; ++m) es.add(m, 1);
    EXPECT_TRUE(es.heavy_hit(1));
    EXPECT_GE(es.estimate(1), 1000u);
}

TEST(ElasticSketch, EvictedResidentKeepsItsMassViaLightPart) {
    ElasticSketch<std::uint32_t> es(1, 4096, 3, 2);
    for (int i = 0; i < 10; ++i) es.add(1, 1);  // resident, pos = 10
    for (int i = 0; i < 20; ++i) es.add(2, 1);  // negative reaches 20 >= 2*10
    EXPECT_TRUE(es.heavy_hit(2));
    // Flow 1's 10 packets were moved to the light part on eviction.
    EXPECT_GE(es.estimate(1), 10u);
}

TEST(CocoSketch, RejectsBadConfig) {
    using CS = CocoSketch<std::uint32_t>;
    EXPECT_THROW(CS(0, 1, 1), std::invalid_argument);
    EXPECT_THROW(CS(1, 0, 1), std::invalid_argument);
}

TEST(CocoSketch, SoleFlowIsExact) {
    CocoSketch<std::uint32_t> cs(64, 2, 1);
    for (int i = 0; i < 50; ++i) cs.add(9, 2);
    EXPECT_TRUE(cs.resident(9));
    EXPECT_EQ(cs.estimate(9), 100u);
}

TEST(CocoSketch, HeavyFlowsAlmostAlwaysResident) {
    CocoSketch<std::uint32_t> cs(256, 2, 5);
    rng::Xoshiro256 rng(10);
    rng::ZipfSampler zipf(5000, 1.2);
    std::map<std::uint32_t, std::uint64_t> truth;
    for (int i = 0; i < 100'000; ++i) {
        const auto k = static_cast<std::uint32_t>(zipf.sample(rng));
        cs.add(k, 1);
        truth[k] += 1;
    }
    // The top handful of flows dominate their buckets with overwhelming
    // probability.
    std::size_t resident_heavies = 0;
    std::size_t heavies = 0;
    for (const auto& [k, t] : truth) {
        if (t > 2000) {
            ++heavies;
            resident_heavies += cs.resident(k) ? 1 : 0;
        }
    }
    ASSERT_GT(heavies, 3u);
    EXPECT_EQ(resident_heavies, heavies);
}

TEST(CocoSketch, EstimateIsStatisticallyUnbiasedForBucketOwners) {
    // Run many independent trials of two colliding flows; the expected
    // estimate of flow A (over trials where A is resident, weighted) tracks
    // its true count within a loose band. This is the property CocoSketch
    // is designed for.
    const int trials = 2000;
    double sum_est = 0;
    int resident_count = 0;
    for (int t = 0; t < trials; ++t) {
        CocoSketch<std::uint32_t> cs(1, 1, static_cast<std::uint64_t>(t));
        for (int i = 0; i < 30; ++i) cs.add(1, 1);
        for (int i = 0; i < 10; ++i) cs.add(2, 1);
        if (cs.resident(1)) {
            sum_est += static_cast<double>(cs.estimate(1));
            ++resident_count;
        }
    }
    // E[estimate * P(resident)] == true count (unbiasedness):
    const double weighted = sum_est / trials;
    EXPECT_NEAR(weighted, 30.0, 4.0);
    EXPECT_GT(resident_count, trials / 2);  // the bigger flow usually owns it
}

}  // namespace
}  // namespace p4lru::sketch
