#include "p4lru/sketch/countmin.hpp"

#include <gtest/gtest.h>

#include <map>

#include "p4lru/common/random.hpp"
#include "p4lru/common/zipf.hpp"

namespace p4lru::sketch {
namespace {

TEST(CountMin, RejectsZeroDimensions) {
    using CM = CountMin<std::uint32_t>;
    EXPECT_THROW(CM(0, 2, 1), std::invalid_argument);
    EXPECT_THROW(CM(8, 0, 1), std::invalid_argument);
}

TEST(CountMin, NeverUnderestimates) {
    CountMin<std::uint32_t> cm(256, 3, 42);
    std::map<std::uint32_t, std::uint64_t> truth;
    rng::Xoshiro256 rng(1);
    for (int i = 0; i < 20'000; ++i) {
        const auto k = static_cast<std::uint32_t>(rng.between(1, 2000));
        const std::uint64_t d = rng.between(1, 100);
        cm.add(k, d);
        truth[k] += d;
    }
    for (const auto& [k, t] : truth) {
        EXPECT_GE(cm.estimate(k), t) << k;
    }
}

TEST(CountMin, ExactWhenNoCollisions) {
    CountMin<std::uint32_t> cm(1u << 16, 2, 7);
    for (std::uint32_t k = 1; k <= 20; ++k) cm.add(k, k * 5);
    for (std::uint32_t k = 1; k <= 20; ++k) {
        EXPECT_EQ(cm.estimate(k), k * 5ull);
    }
}

TEST(CountMin, AddAndEstimateAgreesWithSeparateCalls) {
    CountMin<std::uint32_t> a(128, 2, 9);
    CountMin<std::uint32_t> b(128, 2, 9);
    rng::Xoshiro256 rng(2);
    for (int i = 0; i < 5'000; ++i) {
        const auto k = static_cast<std::uint32_t>(rng.between(1, 500));
        const std::uint64_t est = a.add_and_estimate(k, 3);
        b.add(k, 3);
        EXPECT_EQ(est, b.estimate(k));
    }
}

TEST(CountMin, SaturatesAtCounterMax) {
    CountMin<std::uint32_t, std::uint8_t> cm(8, 1, 3);
    cm.add(1, 1000);
    EXPECT_EQ(cm.estimate(1), 255u);
    cm.add(1, 10);  // must not wrap
    EXPECT_EQ(cm.estimate(1), 255u);
}

TEST(CountMin, ClearResetsEverything) {
    CountMin<std::uint32_t> cm(64, 2, 5);
    cm.add(1, 100);
    cm.clear();
    EXPECT_EQ(cm.estimate(1), 0u);
}

TEST(CountMin, MemoryAccounting) {
    CountMin<std::uint32_t, std::uint32_t> cm(1024, 3, 1);
    EXPECT_EQ(cm.memory_bytes(), 1024u * 3u * 4u);
}

TEST(CuSketch, NeverUnderestimatesAndBeatsOrTiesCm) {
    CountMin<std::uint32_t> cm(256, 3, 11);
    CuSketch<std::uint32_t> cu(256, 3, 11);
    std::map<std::uint32_t, std::uint64_t> truth;
    rng::Xoshiro256 rng(3);
    rng::ZipfSampler zipf(1000, 1.1);
    for (int i = 0; i < 30'000; ++i) {
        const auto k = static_cast<std::uint32_t>(zipf.sample(rng));
        cm.add(k, 1);
        cu.add(k, 1);
        truth[k] += 1;
    }
    std::uint64_t cm_err = 0;
    std::uint64_t cu_err = 0;
    for (const auto& [k, t] : truth) {
        ASSERT_GE(cu.estimate(k), t);
        ASSERT_LE(cu.estimate(k), cm.estimate(k)) << k;
        cm_err += cm.estimate(k) - t;
        cu_err += cu.estimate(k) - t;
    }
    EXPECT_LT(cu_err, cm_err);  // strictly better aggregate error here
}

TEST(CountMin, ErrorBoundHoldsOnAverage) {
    // Classic CM bound: error <= e * N / w with prob 1 - e^-d per query.
    const std::size_t w = 512;
    CountMin<std::uint32_t> cm(w, 3, 13);
    std::map<std::uint32_t, std::uint64_t> truth;
    rng::Xoshiro256 rng(4);
    std::uint64_t total = 0;
    for (int i = 0; i < 50'000; ++i) {
        const auto k = static_cast<std::uint32_t>(rng.between(1, 5000));
        cm.add(k, 1);
        truth[k] += 1;
        ++total;
    }
    const double bound = 2.72 * static_cast<double>(total) / w;
    std::size_t violations = 0;
    for (const auto& [k, t] : truth) {
        if (static_cast<double>(cm.estimate(k) - t) > bound) ++violations;
    }
    EXPECT_LT(static_cast<double>(violations) / truth.size(), 0.05);
}

}  // namespace
}  // namespace p4lru::sketch
