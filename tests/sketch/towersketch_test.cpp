#include "p4lru/sketch/towersketch.hpp"

#include <gtest/gtest.h>

#include "p4lru/sketch/countmin.hpp"

#include <map>

#include "p4lru/common/random.hpp"
#include "p4lru/common/zipf.hpp"

namespace p4lru::sketch {
namespace {

TowerSketch<std::uint32_t> paper_config(std::uint64_t seed = 1) {
    // LruMon's configuration scaled down 64x: 8-bit and 16-bit levels.
    return TowerSketch<std::uint32_t>({{1u << 14, 8}, {1u << 13, 16}}, seed);
}

TEST(TowerSketch, RejectsBadConfig) {
    using TS = TowerSketch<std::uint32_t>;
    EXPECT_THROW(TS({}, 1), std::invalid_argument);
    EXPECT_THROW(TS({{0, 8}}, 1), std::invalid_argument);
    EXPECT_THROW(TS({{8, 12}}, 1), std::invalid_argument);
}

TEST(TowerSketch, ExactForSparseKeys) {
    auto ts = paper_config();
    for (std::uint32_t k = 1; k <= 30; ++k) ts.add(k, k);
    for (std::uint32_t k = 1; k <= 30; ++k) {
        EXPECT_EQ(ts.estimate(k), k) << k;
    }
}

TEST(TowerSketch, NeverUnderestimatesBelowSaturation) {
    auto ts = paper_config(3);
    std::map<std::uint32_t, std::uint64_t> truth;
    rng::Xoshiro256 rng(5);
    for (int i = 0; i < 30'000; ++i) {
        const auto k = static_cast<std::uint32_t>(rng.between(1, 3000));
        ts.add(k, 1);
        truth[k] += 1;
    }
    for (const auto& [k, t] : truth) {
        if (t < 250) {  // below the 8-bit saturation zone
            EXPECT_GE(ts.estimate(k), t) << k;
        }
    }
}

TEST(TowerSketch, SaturatedLevelIsExcludedFromMin) {
    auto ts = paper_config(7);
    // Push one key far past the 8-bit level's max: the 16-bit level should
    // keep counting and the estimate must exceed 255.
    for (int i = 0; i < 500; ++i) ts.add(42, 2);
    EXPECT_GT(ts.estimate(42), 255u);
    EXPECT_LE(ts.estimate(42), 1000u + 65535u);
}

TEST(TowerSketch, AllLevelsSaturatedReturnsFloor) {
    TowerSketch<std::uint32_t> ts({{4, 8}}, 1);
    for (int i = 0; i < 10; ++i) ts.add(1, 100);
    EXPECT_EQ(ts.estimate(1), 255u);  // lower-bound floor
}

TEST(TowerSketch, AddAndEstimateMatchesSeparateOps) {
    auto a = paper_config(9);
    auto b = paper_config(9);
    rng::Xoshiro256 rng(6);
    for (int i = 0; i < 5'000; ++i) {
        const auto k = static_cast<std::uint32_t>(rng.between(1, 800));
        const auto est = a.add_and_estimate(k, 7);
        b.add(k, 7);
        EXPECT_EQ(est, b.estimate(k));
    }
}

TEST(TowerSketch, ClearResets) {
    auto ts = paper_config();
    ts.add(5, 50);
    ts.clear();
    EXPECT_EQ(ts.estimate(5), 0u);
}

TEST(TowerSketch, MemoryAccountingCountsBits) {
    TowerSketch<std::uint32_t> ts({{1024, 8}, {512, 16}}, 1);
    EXPECT_EQ(ts.memory_bytes(), (1024u * 8u + 512u * 16u) / 8u);
}

TEST(TowerSketch, MoreAccurateThanSameMemoryCmForMice) {
    // The tower's wide 8-bit level gives mice better accuracy per byte than
    // a 32-bit CM of equal memory.
    TowerSketch<std::uint32_t> tower({{1u << 12, 8}, {1u << 11, 16}}, 21);
    // Equal memory in a 32-bit CM: (4096*1 + 2048*2) bytes = 8 KiB -> 2048
    // 32-bit counters over 2 rows.
    CountMin<std::uint32_t> cm(1024, 2, 21);
    std::map<std::uint32_t, std::uint64_t> truth;
    rng::Xoshiro256 rng(8);
    rng::ZipfSampler zipf(20'000, 1.0);
    for (int i = 0; i < 60'000; ++i) {
        const auto k = static_cast<std::uint32_t>(zipf.sample(rng));
        tower.add(k, 1);
        cm.add(k, 1);
        truth[k] += 1;
    }
    std::uint64_t tower_err = 0;
    std::uint64_t cm_err = 0;
    std::size_t mice = 0;
    for (const auto& [k, t] : truth) {
        if (t > 16) continue;  // mice only
        ++mice;
        const auto te = tower.estimate(k);
        tower_err += te > t ? te - t : 0;
        cm_err += cm.estimate(k) - t;
    }
    ASSERT_GT(mice, 1000u);
    EXPECT_LT(tower_err, cm_err);
}

}  // namespace
}  // namespace p4lru::sketch
