#include "p4lru/core/parallel_array.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "../test_util.hpp"
#include "p4lru/core/p4lru_encoded.hpp"

namespace p4lru::core {
namespace {

using Unit3 = P4lru<std::uint32_t, std::uint32_t, 3>;

TEST(ParallelCache, RejectsZeroUnits) {
    using PC = ParallelCache<Unit3, std::uint32_t, std::uint32_t>;
    EXPECT_THROW(PC(0, 1), std::invalid_argument);
}

TEST(ParallelCache, CapacityIsUnitsTimesEntries) {
    ParallelCache<Unit3, std::uint32_t, std::uint32_t> pc(128, 1);
    EXPECT_EQ(pc.unit_count(), 128u);
    EXPECT_EQ(pc.capacity(), 384u);
}

TEST(ParallelCache, BucketAssignmentIsDeterministic) {
    ParallelCache<Unit3, std::uint32_t, std::uint32_t> pc(64, 7);
    for (std::uint32_t k = 1; k < 1000; ++k) {
        EXPECT_EQ(pc.bucket(k), pc.bucket(k));
        EXPECT_LT(pc.bucket(k), 64u);
    }
}

TEST(ParallelCache, DifferentSeedsGiveDifferentMappings) {
    ParallelCache<Unit3, std::uint32_t, std::uint32_t> a(1024, 1);
    ParallelCache<Unit3, std::uint32_t, std::uint32_t> b(1024, 2);
    std::size_t same = 0;
    for (std::uint32_t k = 1; k <= 1000; ++k) {
        same += a.bucket(k) == b.bucket(k) ? 1 : 0;
    }
    EXPECT_LT(same, 50u);  // ~1/1024 expected collisions
}

TEST(ParallelCache, UpdateAndFindRoundTrip) {
    ParallelCache<Unit3, std::uint32_t, std::uint32_t> pc(256, 3);
    for (std::uint32_t k = 1; k <= 500; ++k) {
        pc.update(k, k * 2);
    }
    // With 768 entries for 500 keys, most must still be present; every
    // present key maps to its own value.
    std::size_t present = 0;
    for (std::uint32_t k = 1; k <= 500; ++k) {
        if (const auto v = pc.find(k)) {
            EXPECT_EQ(*v, k * 2);
            ++present;
        }
    }
    EXPECT_GT(present, 350u);
    EXPECT_EQ(pc.size(), present);
}

TEST(ParallelCache, EvictionsStayWithinTheBucket) {
    ParallelCache<Unit3, std::uint32_t, std::uint32_t> pc(16, 5);
    std::unordered_map<std::uint32_t, std::size_t> bucket_of_key;
    for (std::uint32_t k = 1; k <= 2000; ++k) {
        bucket_of_key[k] = pc.bucket(k);
        const auto r = pc.update(k, k);
        if (r.evicted) {
            EXPECT_EQ(bucket_of_key.at(r.evicted_key), pc.bucket(k));
        }
    }
}

TEST(ParallelCache, FlowKeySupport) {
    ParallelCache<P4lru<FlowKey, std::uint32_t, 3>, FlowKey, std::uint32_t>
        pc(64, 9);
    const FlowKey f1 = testutil::make_flow(1);
    const FlowKey f2 = testutil::make_flow(2);
    pc.update(f1, 100);
    pc.update(f2, 200);
    EXPECT_EQ(pc.find(f1), std::optional<std::uint32_t>(100));
    EXPECT_EQ(pc.find(f2), std::optional<std::uint32_t>(200));
}

TEST(ParallelCache, WorksWithEncodedUnits) {
    ParallelCache<P4lru3Encoded<std::uint32_t, std::uint32_t>, std::uint32_t,
                  std::uint32_t>
        pc(32, 11);
    for (std::uint32_t k = 1; k <= 200; ++k) pc.update(k, k + 7);
    std::size_t present = 0;
    for (std::uint32_t k = 1; k <= 200; ++k) {
        if (const auto v = pc.find(k)) {
            EXPECT_EQ(*v, k + 7);
            ++present;
        }
    }
    EXPECT_GT(present, 70u);
}

// Layout selection: behavioural P4lru units default to the SoA slab; pinning
// AosStorage explicitly must keep every public operation working unchanged.
TEST(ParallelCache, ExplicitAosStorageRoundTrip) {
    static_assert(std::is_same_v<
                  ParallelCache<Unit3, std::uint32_t, std::uint32_t>::
                      storage_type,
                  SoaSlab<std::uint32_t, std::uint32_t, 3>>);
    AosParallelCache<Unit3, std::uint32_t, std::uint32_t> pc(64, 21);
    static_assert(std::is_same_v<decltype(pc)::storage_type,
                                 AosStorage<Unit3, std::uint32_t,
                                            std::uint32_t>>);
    for (std::uint32_t k = 1; k <= 150; ++k) pc.update(k, k + 1);
    std::size_t present = 0;
    for (std::uint32_t k = 1; k <= 150; ++k) {
        if (const auto v = pc.find(k)) {
            EXPECT_EQ(*v, k + 1);
            ++present;
        }
    }
    EXPECT_GT(present, 60u);
    EXPECT_EQ(pc.size(), present);
    EXPECT_TRUE(pc.materialized());  // AoS backing is always materialized
}

TEST(ParallelCache, UpdateAtMatchesUpdate) {
    ParallelCache<Unit3, std::uint32_t, std::uint32_t> a(32, 19);
    ParallelCache<Unit3, std::uint32_t, std::uint32_t> b(32, 19);
    for (std::uint32_t k = 1; k <= 400; ++k) {
        const auto ra = a.update(k % 90 + 1, k);
        const auto rb = b.update_at(b.bucket(k % 90 + 1), k % 90 + 1, k);
        EXPECT_EQ(ra.hit, rb.hit);
        EXPECT_EQ(ra.hit_pos, rb.hit_pos);
        EXPECT_EQ(ra.evicted, rb.evicted);
    }
    EXPECT_EQ(a.size(), b.size());
}

TEST(ParallelCache, TouchAndInsertLruDelegate) {
    ParallelCache<Unit3, std::uint32_t, std::uint32_t> pc(8, 13);
    pc.update(1, 10);
    EXPECT_TRUE(pc.touch(1, 10));
    EXPECT_FALSE(pc.touch(999, 0));
    EXPECT_FALSE(pc.insert_lru(2, 20).has_value());
    EXPECT_EQ(pc.find(2), std::optional<std::uint32_t>(20));
}

// More units at equal total entries -> fewer hash-collision conflicts than a
// single giant unit would suffer... but also shallower LRU depth. Sanity:
// hit rate on a skewed stream is far above zero and below one.
TEST(ParallelCache, SkewedStreamHitRateSanity) {
    ParallelCache<Unit3, std::uint32_t, std::uint32_t> pc(512, 17);
    const auto keys = testutil::random_keys(50'000, 4096, 99, 0.6);
    std::size_t hits = 0;
    for (const auto k : keys) hits += pc.update(k, k).hit ? 1 : 0;
    const double rate = static_cast<double>(hits) / keys.size();
    EXPECT_GT(rate, 0.55);  // the 0.6 repeat bias alone guarantees ~0.6
    EXPECT_LT(rate, 0.95);
}

}  // namespace
}  // namespace p4lru::core
