#include "p4lru/core/series_cache.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "../test_util.hpp"
#include "p4lru/core/p4lru.hpp"

namespace p4lru::core {
namespace {

using Unit3 = P4lru<std::uint64_t, std::uint64_t, 3>;
using Series = SeriesCache<Unit3, std::uint64_t, std::uint64_t>;

TEST(SeriesCache, RejectsZeroLevels) {
    EXPECT_THROW(Series(0, 8, 1), std::invalid_argument);
}

TEST(SeriesCache, QueryMissOnEmptyCache) {
    const Series s(4, 8, 1);
    const auto lk = s.query(42);
    EXPECT_FALSE(lk.hit());
    EXPECT_EQ(lk.level, 0u);
}

TEST(SeriesCache, ReplyInsertLandsInLevelOne) {
    Series s(4, 8, 1);
    EXPECT_FALSE(s.reply_insert(42, 420).has_value());
    const auto lk = s.query(42);
    EXPECT_TRUE(lk.hit());
    EXPECT_EQ(lk.level, 1u);
    EXPECT_EQ(lk.value, 420u);
}

TEST(SeriesCache, EvicteesCascadeToDeeperLevels) {
    Series s(2, 1, 1);  // 1 unit per level: all keys share the bucket
    // Fill level 1's only unit (3 entries).
    s.reply_insert(1, 10);
    s.reply_insert(2, 20);
    s.reply_insert(3, 30);
    // Next insert evicts key 1 from level 1 into level 2 (as LRU entry).
    EXPECT_FALSE(s.reply_insert(4, 40).has_value());
    EXPECT_EQ(s.query(1).level, 2u);
    EXPECT_EQ(s.query(1).value, 10u);
    EXPECT_EQ(s.query(4).level, 1u);
}

TEST(SeriesCache, FullCascadeEventuallyEvictsEntirely) {
    Series s(2, 1, 1);  // capacity 6 total
    std::uint64_t fully_evicted = 0;
    for (std::uint64_t k = 1; k <= 20; ++k) {
        if (s.reply_insert(k, k * 10)) ++fully_evicted;
    }
    EXPECT_GT(fully_evicted, 0u);
    // Exactly 6 keys remain cached.
    std::size_t cached = 0;
    for (std::uint64_t k = 1; k <= 20; ++k) cached += s.query(k).hit();
    EXPECT_EQ(cached, 6u);
}

TEST(SeriesCache, ReplyPromoteRefreshesRecency) {
    Series s(1, 1, 1);
    s.reply_insert(1, 10);
    s.reply_insert(2, 20);
    s.reply_insert(3, 30);  // order: 3 2 1
    const auto lk = s.query(1);
    ASSERT_EQ(lk.level, 1u);
    EXPECT_TRUE(s.reply_promote(1, 10, lk.level));
    // 2 is now the least recent: next insert evicts it into nowhere
    // (single level) — verify 1 survived.
    s.reply_insert(4, 40);
    EXPECT_TRUE(s.query(1).hit());
    EXPECT_FALSE(s.query(2).hit());
}

TEST(SeriesCache, ReplyPromoteRejectsBadLevel) {
    Series s(2, 4, 1);
    EXPECT_THROW(s.reply_promote(1, 1, 0), std::out_of_range);
    EXPECT_THROW(s.reply_promote(1, 1, 3), std::out_of_range);
}

// The headline invariant of the round-trip protocol: a key never occupies
// two levels at once.
TEST(SeriesCache, DuplicateFreedomUnderRandomWorkload) {
    Series s(4, 16, 7);
    const auto keys = testutil::random_keys(20'000, 400, 55, 0.4);
    for (const auto k32 : keys) {
        const std::uint64_t k = k32;
        const auto lk = s.query(k);
        if (lk.hit()) {
            s.reply_promote(k, lk.value, lk.level);
        } else {
            s.reply_insert(k, k * 2);
        }
        ASSERT_TRUE(s.duplicate_free(k));
    }
    for (std::uint64_t k = 1; k <= 400; ++k) {
        ASSERT_TRUE(s.duplicate_free(k));
    }
}

// Values must never get crossed between keys, even through cascades.
TEST(SeriesCache, ValueIntegrityThroughCascades) {
    Series s(3, 4, 3);
    const auto keys = testutil::random_keys(30'000, 200, 77, 0.3);
    for (const auto k32 : keys) {
        const std::uint64_t k = k32;
        const auto lk = s.query(k);
        if (lk.hit()) {
            ASSERT_EQ(lk.value, k * 1000 + 1) << "crossed value for " << k;
            s.reply_promote(k, lk.value, lk.level);
        } else {
            s.reply_insert(k, k * 1000 + 1);
        }
    }
}

TEST(SeriesCache, SinglePassUpdateAlsoDuplicateFree) {
    Series s(4, 8, 9);
    const auto keys = testutil::random_keys(10'000, 300, 88, 0.4);
    for (const auto k32 : keys) {
        s.update_single_pass(k32, k32);
        ASSERT_TRUE(s.duplicate_free(k32));
    }
}

TEST(SeriesCache, NaiveInjectionCreatesDuplicates) {
    // Single-unit levels so cascades are easy to force. Key 1 pushed into
    // level 2, then re-injected at level 1: two copies.
    Series s(2, 1, 1);
    s.naive_inject(1, 10);
    s.naive_inject(2, 20);
    s.naive_inject(3, 30);
    s.naive_inject(4, 40);  // 1 cascades into level 2
    EXPECT_EQ(s.query(1).level, 2u);
    s.naive_inject(1, 11);  // re-injected at level 1 -> duplicate
    EXPECT_FALSE(s.duplicate_free(1));
    EXPECT_GT(s.duplicate_fraction(), 0.0);
}

TEST(SeriesCache, RoundTripProtocolHasZeroDuplicateFraction) {
    Series s(4, 8, 3);
    const auto keys = testutil::random_keys(5'000, 150, 7, 0.4);
    for (const auto k32 : keys) {
        const std::uint64_t k = k32;
        const auto lk = s.query(k);
        if (lk.hit()) {
            s.reply_promote(k, lk.value, lk.level);
        } else {
            s.reply_insert(k, k);
        }
    }
    EXPECT_DOUBLE_EQ(s.duplicate_fraction(), 0.0);
}

TEST(SeriesCache, CapacityAccounting) {
    const Series s(4, 16, 1);
    EXPECT_EQ(s.level_count(), 4u);
    EXPECT_EQ(s.capacity(), 4u * 16u * 3u);
}

// Deeper chains must not *hurt* hit rate on a locality-heavy stream at equal
// per-level size (they add capacity).
TEST(SeriesCache, MoreLevelsMoreHits) {
    const auto keys = testutil::random_keys(40'000, 2000, 31, 0.3);
    const auto run = [&](std::size_t levels) {
        Series s(levels, 64, 13);
        std::size_t hits = 0;
        for (const auto k32 : keys) {
            const std::uint64_t k = k32;
            const auto lk = s.query(k);
            if (lk.hit()) {
                ++hits;
                s.reply_promote(k, lk.value, lk.level);
            } else {
                s.reply_insert(k, k);
            }
        }
        return hits;
    };
    const auto h1 = run(1);
    const auto h2 = run(2);
    const auto h4 = run(4);
    EXPECT_GE(h2, h1);
    EXPECT_GE(h4, h2);
}

}  // namespace
}  // namespace p4lru::core
