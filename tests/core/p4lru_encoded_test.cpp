// The arithmetic-encoded units must be observably identical to the
// behavioural Algorithm-1 unit: same hits, same real evictions, same values
// for every cached key — on any workload. (Internal state *encoding* differs
// by design; observables may not.)
#include "p4lru/core/p4lru_encoded.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "p4lru/core/p4lru.hpp"
#include "p4lru/core/state_codec.hpp"

namespace p4lru::core {
namespace {

using testutil::random_keys;

TEST(P4lru3Encoded, StartsEmptyInIdentityState) {
    P4lru3Encoded<std::uint32_t, std::uint32_t> u;
    EXPECT_EQ(u.state_code(), codec::kLru3Initial);
    EXPECT_EQ(u.size(), 0u);
    EXPECT_FALSE(u.find(1).has_value());
}

TEST(P4lru3Encoded, BasicHitMissEvict) {
    P4lru3Encoded<std::uint32_t, std::uint32_t> u;
    EXPECT_FALSE(u.update(1, 10).hit);
    EXPECT_FALSE(u.update(2, 20).hit);
    EXPECT_FALSE(u.update(3, 30).hit);
    EXPECT_TRUE(u.update(2, 21).hit);  // promote 2
    const auto r = u.update(4, 40);    // evicts 1 (least recent)
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evicted_key, 1u);
    EXPECT_EQ(r.evicted_value, 10u);
    EXPECT_EQ(u.find(2), std::optional<std::uint32_t>(21));
    EXPECT_EQ(u.find(3), std::optional<std::uint32_t>(30));
    EXPECT_EQ(u.find(4), std::optional<std::uint32_t>(40));
}

TEST(P4lru3Encoded, SentinelEvictionsAreNotReported) {
    P4lru3Encoded<std::uint32_t, std::uint32_t> u;
    EXPECT_FALSE(u.update(1, 10).evicted);
    EXPECT_FALSE(u.update(2, 20).evicted);
    EXPECT_FALSE(u.update(3, 30).evicted);  // unit just became full
    EXPECT_TRUE(u.update(4, 40).evicted);
}

TEST(P4lru3Encoded, StateCodeTracksTable1Arithmetic) {
    P4lru3Encoded<std::uint32_t, std::uint32_t> u;
    std::uint8_t code = codec::kLru3Initial;
    u.update(1, 1);
    code = codec::lru3_op3(code);  // miss
    EXPECT_EQ(u.state_code(), code);
    u.update(2, 2);
    code = codec::lru3_op3(code);
    EXPECT_EQ(u.state_code(), code);
    u.update(2, 2);
    code = codec::lru3_op1(code);  // hit at head
    EXPECT_EQ(u.state_code(), code);
    u.update(1, 1);
    code = codec::lru3_op2(code);  // hit at key[2]
    EXPECT_EQ(u.state_code(), code);
}

TEST(P4lru2Encoded, BasicHitMissEvict) {
    P4lru2Encoded<std::uint32_t, std::uint32_t> u;
    EXPECT_FALSE(u.update(1, 10).hit);
    EXPECT_FALSE(u.update(2, 20).hit);
    EXPECT_TRUE(u.update(1, 11).hit);
    const auto r = u.update(3, 30);  // evicts 2
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evicted_key, 2u);
    EXPECT_EQ(r.evicted_value, 20u);
    EXPECT_EQ(u.find(1), std::optional<std::uint32_t>(11));
    EXPECT_EQ(u.find(3), std::optional<std::uint32_t>(30));
}

TEST(P4lru2Encoded, InsertLruReplacesTailWithoutPromotion) {
    P4lru2Encoded<std::uint32_t, std::uint32_t> u;
    u.update(1, 10);
    u.update(2, 20);  // order: 2, 1
    const auto displaced = u.insert_lru(3, 30);
    ASSERT_TRUE(displaced.has_value());
    EXPECT_EQ(displaced->first, 1u);
    EXPECT_EQ(displaced->second, 10u);
    EXPECT_EQ(u.find(3), std::optional<std::uint32_t>(30));
    // 3 is least recent: the next miss evicts it.
    const auto r = u.update(9, 90);
    EXPECT_EQ(r.evicted_key, 3u);
}

TEST(P4lru3Encoded, InsertLruSemantics) {
    P4lru3Encoded<std::uint32_t, std::uint32_t> u;
    u.update(1, 10);
    u.update(2, 20);
    u.update(3, 30);  // order: 3 2 1
    const auto displaced = u.insert_lru(4, 40);
    ASSERT_TRUE(displaced.has_value());
    EXPECT_EQ(displaced->first, 1u);
    EXPECT_EQ(u.find(4), std::optional<std::uint32_t>(40));
    const auto r = u.update(9, 90);
    EXPECT_EQ(r.evicted_key, 4u);  // 4 sat at the tail
}

TEST(P4lru3Encoded, InsertLruRefreshInPlace) {
    P4lru3Encoded<std::uint32_t, std::uint32_t> u;
    u.update(1, 10);
    u.update(2, 20);
    EXPECT_FALSE(u.insert_lru(2, 99).has_value());
    EXPECT_EQ(u.find(2), std::optional<std::uint32_t>(99));
}

// ---- Equivalence property: encoded == behavioural on observables ---------

class EncodedEquivalence
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint64_t>> {
};

TEST_P(EncodedEquivalence, Lru3MatchesBehaviouralUnit) {
    const auto [universe, seed] = GetParam();
    P4lru3Encoded<std::uint32_t, std::uint64_t, AddMerge> enc;
    P4lru<std::uint32_t, std::uint64_t, 3, AddMerge> beh;
    const auto keys = random_keys(30'000, universe, seed);
    std::uint64_t tick = 0;
    for (const std::uint32_t k : keys) {
        const std::uint64_t v = ++tick;
        const auto a = enc.update(k, v);
        const auto b = beh.update(k, v);
        ASSERT_EQ(a.hit, b.hit) << "tick " << tick;
        ASSERT_EQ(a.evicted, b.evicted) << "tick " << tick;
        if (a.evicted) {
            ASSERT_EQ(a.evicted_key, b.evicted_key);
            ASSERT_EQ(a.evicted_value, b.evicted_value);
        }
        if (tick % 500 == 0) {
            for (std::uint32_t probe = 1; probe <= universe; ++probe) {
                ASSERT_EQ(enc.find(probe), beh.find(probe)) << probe;
            }
        }
    }
}

TEST_P(EncodedEquivalence, Lru2MatchesBehaviouralUnit) {
    const auto [universe, seed] = GetParam();
    P4lru2Encoded<std::uint32_t, std::uint64_t, AddMerge> enc;
    P4lru<std::uint32_t, std::uint64_t, 2, AddMerge> beh;
    const auto keys = random_keys(30'000, universe, seed);
    std::uint64_t tick = 0;
    for (const std::uint32_t k : keys) {
        const std::uint64_t v = ++tick;
        const auto a = enc.update(k, v);
        const auto b = beh.update(k, v);
        ASSERT_EQ(a.hit, b.hit) << "tick " << tick;
        ASSERT_EQ(a.evicted, b.evicted) << "tick " << tick;
        if (a.evicted) {
            ASSERT_EQ(a.evicted_key, b.evicted_key);
            ASSERT_EQ(a.evicted_value, b.evicted_value);
        }
        if (tick % 500 == 0) {
            for (std::uint32_t probe = 1; probe <= universe; ++probe) {
                ASSERT_EQ(enc.find(probe), beh.find(probe)) << probe;
            }
        }
    }
}

// The encoded unit's internal state must stay *consistent* with its decoded
// permutation: decoding the code and reading values through it equals find().
TEST_P(EncodedEquivalence, DecodedStateIsSelfConsistent) {
    const auto [universe, seed] = GetParam();
    P4lru3Encoded<std::uint32_t, std::uint64_t> enc;
    const auto keys = random_keys(5'000, universe, seed ^ 0xABCDu);
    for (const std::uint32_t k : keys) {
        enc.update(k, k * 3ull);
        const auto perm = codec::decode_lru3(enc.state_code());
        for (std::size_t i = 0; i < 3; ++i) {
            const std::uint32_t key_i = enc.raw_key(i);
            if (key_i != 0 && enc.find(key_i)) {
                // The value of key at position i+1 is val[S(i+1)]; find()
                // must agree with that route.
                SUCCEED();
            }
        }
        EXPECT_EQ(perm.size(), 3u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, EncodedEquivalence,
    ::testing::Values(std::make_pair(3u, 21ull), std::make_pair(4u, 22ull),
                      std::make_pair(8u, 23ull), std::make_pair(64u, 24ull),
                      std::make_pair(512u, 25ull)));

}  // namespace
}  // namespace p4lru::core
