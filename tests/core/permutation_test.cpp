#include "p4lru/core/permutation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace p4lru::core {
namespace {

TEST(Permutation, IdentityMapsEveryElementToItself) {
    const Permutation id(5);
    for (std::size_t i = 1; i <= 5; ++i) {
        EXPECT_EQ(id(i), i);
    }
}

TEST(Permutation, ConstructorRejectsInvalidBottomRows) {
    EXPECT_THROW(Permutation({1, 1, 3}), std::invalid_argument);
    EXPECT_THROW(Permutation({0, 1, 2}), std::invalid_argument);
    EXPECT_THROW(Permutation({1, 2, 4}), std::invalid_argument);
    EXPECT_THROW(Permutation(static_cast<std::size_t>(0)),
                 std::invalid_argument);
}

TEST(Permutation, IndexAccessOutOfRangeThrows) {
    const Permutation p({2, 1});
    EXPECT_THROW(p(0), std::out_of_range);
    EXPECT_THROW(p(3), std::out_of_range);
}

// The paper's footnote 2: (p x q)(j) = q(p(j)).
TEST(Permutation, ComposeFollowsPaperConvention) {
    const Permutation p({2, 3, 1});
    const Permutation q({3, 1, 2});
    const Permutation r = p.compose(q);
    for (std::size_t j = 1; j <= 3; ++j) {
        EXPECT_EQ(r(j), q(p(j)));
    }
}

// Example 1 of Section 2.2: R^-1 x identity with hit position i = 4, n = 5.
TEST(Permutation, PaperExample1StateUpdate) {
    const Permutation identity(5);
    const Permutation r_inv = Permutation::rotation(5, 4).inverse();
    EXPECT_EQ(r_inv, Permutation({4, 1, 2, 3, 5}));
    EXPECT_EQ(r_inv.compose(identity), Permutation({4, 1, 2, 3, 5}));
}

// Example 2 of Section 2.2: a miss (i = n) after Example 1.
TEST(Permutation, PaperExample2StateUpdate) {
    const Permutation after_ex1({4, 1, 2, 3, 5});
    const Permutation r_inv = Permutation::rotation(5, 5).inverse();
    EXPECT_EQ(r_inv, Permutation({5, 1, 2, 3, 4}));
    EXPECT_EQ(r_inv.compose(after_ex1), Permutation({5, 4, 1, 2, 3}));
}

TEST(Permutation, RotationMatchesPaperDefinition) {
    // R = (1 2 ... i-1 i | 2 3 ... i 1), identity beyond i.
    const Permutation r = Permutation::rotation(5, 3);
    EXPECT_EQ(r(1), 2u);
    EXPECT_EQ(r(2), 3u);
    EXPECT_EQ(r(3), 1u);
    EXPECT_EQ(r(4), 4u);
    EXPECT_EQ(r(5), 5u);
}

TEST(Permutation, RotationRejectsBadPosition) {
    EXPECT_THROW(Permutation::rotation(3, 0), std::out_of_range);
    EXPECT_THROW(Permutation::rotation(3, 4), std::out_of_range);
}

TEST(Permutation, InverseComposesToIdentity) {
    const Permutation p({3, 1, 4, 2});
    EXPECT_EQ(p.compose(p.inverse()), Permutation(4));
    EXPECT_EQ(p.inverse().compose(p), Permutation(4));
}

TEST(Permutation, ParityOfKnownPermutations) {
    EXPECT_TRUE(Permutation(3).is_even());
    EXPECT_FALSE(Permutation({2, 1, 3}).is_even());  // one transposition
    EXPECT_TRUE(Permutation({2, 3, 1}).is_even());   // 3-cycle
    EXPECT_TRUE(Permutation({3, 1, 2}).is_even());
    EXPECT_FALSE(Permutation({1, 3, 2}).is_even());
    EXPECT_FALSE(Permutation({3, 2, 1}).is_even());
}

TEST(Permutation, LehmerRankRoundTripsAllOfS4) {
    for (std::uint64_t rank = 0; rank < factorial(4); ++rank) {
        const Permutation p = Permutation::from_lehmer_rank(4, rank);
        EXPECT_EQ(p.lehmer_rank(), rank);
    }
}

TEST(Permutation, LehmerRankOutOfRangeThrows) {
    EXPECT_THROW(Permutation::from_lehmer_rank(3, 6), std::out_of_range);
}

TEST(Permutation, FactorialValues) {
    EXPECT_EQ(factorial(0), 1u);
    EXPECT_EQ(factorial(1), 1u);
    EXPECT_EQ(factorial(3), 6u);
    EXPECT_EQ(factorial(6), 720u);
    EXPECT_THROW(factorial(21), std::overflow_error);
}

TEST(Permutation, ToStringFormat) {
    EXPECT_EQ(Permutation({2, 1, 3}).to_string(), "(1 2 3 / 2 1 3)");
}

class PermutationGroupAxioms : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PermutationGroupAxioms, ClosureAssociativityInverse) {
    const std::size_t n = GetParam();
    const std::uint64_t order = factorial(n);
    std::vector<Permutation> elems;
    for (std::uint64_t r = 0; r < order; ++r) {
        elems.push_back(Permutation::from_lehmer_rank(n, r));
    }
    const Permutation id(n);
    for (const auto& a : elems) {
        EXPECT_EQ(a.compose(id), a);
        EXPECT_EQ(id.compose(a), a);
        EXPECT_EQ(a.compose(a.inverse()), id);
        for (const auto& b : elems) {
            // Closure: rank of the product is a valid rank (always true by
            // construction) — verify associativity on a sample instead.
            const auto ab = a.compose(b);
            EXPECT_LT(ab.lehmer_rank(), order);
        }
    }
    // Full associativity check for the first few elements only (cubic).
    const std::size_t lim = std::min<std::size_t>(elems.size(), 6);
    for (std::size_t i = 0; i < lim; ++i) {
        for (std::size_t j = 0; j < lim; ++j) {
            for (std::size_t k = 0; k < lim; ++k) {
                EXPECT_EQ(elems[i].compose(elems[j]).compose(elems[k]),
                          elems[i].compose(elems[j].compose(elems[k])));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, PermutationGroupAxioms,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace p4lru::core
