#include "p4lru/core/state_codec.hpp"

#include <gtest/gtest.h>

#include "p4lru/core/lru_state.hpp"

namespace p4lru::core::codec {
namespace {

TEST(StateCodec, Table1EncodingMatchesPaper) {
    EXPECT_EQ(encode_lru3(Permutation({1, 2, 3})), 4);
    EXPECT_EQ(encode_lru3(Permutation({2, 1, 3})), 5);
    EXPECT_EQ(encode_lru3(Permutation({3, 1, 2})), 2);
    EXPECT_EQ(encode_lru3(Permutation({1, 3, 2})), 1);
    EXPECT_EQ(encode_lru3(Permutation({2, 3, 1})), 0);
    EXPECT_EQ(encode_lru3(Permutation({3, 2, 1})), 3);
}

TEST(StateCodec, DecodeIsInverseOfEncode) {
    for (std::uint8_t code = 0; code < 6; ++code) {
        EXPECT_EQ(encode_lru3(decode_lru3(code)), code);
    }
}

TEST(StateCodec, DecodeRejectsBadCode) {
    EXPECT_THROW(decode_lru3(6), std::out_of_range);
}

TEST(StateCodec, EncodeRejectsWrongSize) {
    EXPECT_THROW(encode_lru3(Permutation({2, 1})), std::invalid_argument);
}

TEST(StateCodec, EvenPermutationsGetEvenCodes) {
    for (std::uint8_t code = 0; code < 6; ++code) {
        EXPECT_EQ(decode_lru3(code).is_even(), code % 2 == 0) << int{code};
    }
}

// Figure 4 of the paper: operation-2 transitions.
TEST(StateCodec, Operation2MatchesFigure4) {
    EXPECT_EQ(lru3_op2(4), 5);  // ABC -> BAC
    EXPECT_EQ(lru3_op2(5), 4);
    EXPECT_EQ(lru3_op2(1), 2);  // ACB -> CAB
    EXPECT_EQ(lru3_op2(2), 1);
    EXPECT_EQ(lru3_op2(0), 3);  // BCA -> CBA
    EXPECT_EQ(lru3_op2(3), 0);
}

// Figure 5 of the paper: operation-3 transitions (two 3-cycles).
TEST(StateCodec, Operation3MatchesFigure5) {
    EXPECT_EQ(lru3_op3(4), 2);  // 4 -> 2 -> 0 -> 4
    EXPECT_EQ(lru3_op3(2), 0);
    EXPECT_EQ(lru3_op3(0), 4);
    EXPECT_EQ(lru3_op3(5), 3);  // 5 -> 3 -> 1 -> 5
    EXPECT_EQ(lru3_op3(3), 1);
    EXPECT_EQ(lru3_op3(1), 5);
}

TEST(StateCodec, Operation1IsIdentity) {
    for (std::uint8_t code = 0; code < 6; ++code) {
        EXPECT_EQ(lru3_op1(code), code);
    }
}

TEST(StateCodec, ExhaustiveVerifierPasses) {
    EXPECT_TRUE(verify_lru3_codec());
    EXPECT_TRUE(verify_lru2_codec());
}

TEST(StateCodec, S1AndS3TablesMatchDecodedPermutations) {
    for (std::uint8_t code = 0; code < 6; ++code) {
        const Permutation p = decode_lru3(code);
        EXPECT_EQ(kLru3S1[code], p(1));
        EXPECT_EQ(kLru3S3[code], p(3));
    }
}

TEST(StateCodec, Lru2TransitionsAndSlots) {
    EXPECT_EQ(lru2_op1(0), 0);
    EXPECT_EQ(lru2_op1(1), 1);
    EXPECT_EQ(lru2_op2(0), 1);
    EXPECT_EQ(lru2_op2(1), 0);
    EXPECT_EQ(lru2_s1(0), 1u);
    EXPECT_EQ(lru2_s2(0), 2u);
    EXPECT_EQ(lru2_s1(1), 2u);
    EXPECT_EQ(lru2_s2(1), 1u);
}

// Closure: every op keeps codes inside [0, 5], from every state — the DFA
// never escapes its state space.
TEST(StateCodec, TransitionsAreClosed) {
    for (std::uint8_t code = 0; code < 6; ++code) {
        EXPECT_LT(lru3_op1(code), 6);
        EXPECT_LT(lru3_op2(code), 6);
        EXPECT_LT(lru3_op3(code), 6);
    }
}

// op3 generates the 3-cycle subgroup reachability: applying it three times
// returns to the start (it is a 3-cycle on each parity class).
TEST(StateCodec, Operation3HasOrderThree) {
    for (std::uint8_t code = 0; code < 6; ++code) {
        EXPECT_EQ(lru3_op3(lru3_op3(lru3_op3(code))), code);
    }
}

// op2 is an involution.
TEST(StateCodec, Operation2IsInvolution) {
    for (std::uint8_t code = 0; code < 6; ++code) {
        EXPECT_EQ(lru3_op2(lru3_op2(code)), code);
    }
}

}  // namespace
}  // namespace p4lru::core::codec
