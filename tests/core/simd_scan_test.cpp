// Cross-kernel equivalence for the SoaSlab scan kernels: every kernel the
// running CPU offers (scalar, SSE2, AVX2, NEON) must return bit-identical
// match masks to the scalar reference on every row — random rows and the
// adversarial shapes: duplicate keys in one row, probes of Key{} against
// empty units, FlowKeys that differ only in their pad bytes (lane_eq
// ignores them; a naive 16-byte compare would not), and MRU fast-path hits.
// Also covers the dispatch machinery itself: env/cpuid resolution, the
// set_kernel_override rebind hook, and slab-level stream equivalence under
// each forced kernel.
#include "p4lru/core/simd/scan_kernels.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "p4lru/core/soa_slab.hpp"

namespace p4lru::core::simd {
namespace {

std::vector<ScanKernel> available_kernels() {
    std::vector<ScanKernel> v{ScanKernel::kScalar};
    for (const ScanKernel k :
         {ScanKernel::kSse2, ScanKernel::kAvx2, ScanKernel::kNeon}) {
        if (kernel_available(k)) v.push_back(k);
    }
    return v;
}

/// Compare every available kernel of one shape against the scalar
/// reference on one row/probe pair.
template <typename Key, std::size_t Stride, std::size_t N>
void expect_kernels_agree(const Key (&row)[Stride], const Key& probe) {
    using K = ScanKernels<Key, Stride, N>;
    const unsigned ref = K::scalar(row, probe);
    for (const ScanKernel k : available_kernels()) {
        EXPECT_EQ(K::get(k)(row, probe), ref)
            << "kernel " << kernel_name(k) << " stride " << Stride << " N "
            << N;
    }
    // The mask must never carry bits for pad lanes >= N.
    EXPECT_EQ(ref & ~((1u << N) - 1u), 0u);
}

template <typename Key, std::size_t Stride, std::size_t N, typename Gen>
void fuzz_shape(Gen&& gen, int rounds) {
    std::mt19937_64 rng(0x5CA7u ^ (Stride << 8) ^ N);
    for (int r = 0; r < rounds; ++r) {
        alignas(64) Key row[Stride];
        // A small pool makes in-row duplicates and row/probe collisions
        // common — the interesting cases for a first-match scan.
        for (auto& lane : row) lane = gen(rng() % 5);
        const Key probe = gen(rng() % 5);
        expect_kernels_agree<Key, Stride, N>(row, probe);
        // Empty-unit shape: lanes hold Key{} (what first_touch writes) and
        // the probe is Key{} — the mask reports lane equality; occupancy
        // masking to zero is the caller's job, but pad lanes must not leak.
        alignas(64) Key zeros[Stride] = {};
        expect_kernels_agree<Key, Stride, N>(zeros, Key{});
        expect_kernels_agree<Key, Stride, N>(zeros, probe);
    }
}

TEST(SimdScan, U32KernelsMatchScalar) {
    const auto gen = [](std::uint64_t i) {
        return static_cast<std::uint32_t>(0xABCD0000u + i * 0x1111u);
    };
    fuzz_shape<std::uint32_t, 2, 2>(gen, 400);
    fuzz_shape<std::uint32_t, 4, 3>(gen, 400);
    fuzz_shape<std::uint32_t, 4, 4>(gen, 400);
}

TEST(SimdScan, U64KernelsMatchScalar) {
    const auto gen = [](std::uint64_t i) {
        // Values whose two 32-bit halves collide across pool entries, so a
        // half-matching (but not whole-matching) lane exists — the case the
        // SSE2 fold of two 32-bit compares must not mistake for a match.
        return (i << 32) | 0xFEEDBEEFull;
    };
    fuzz_shape<std::uint64_t, 2, 2>(gen, 400);
    fuzz_shape<std::uint64_t, 4, 3>(gen, 400);
    fuzz_shape<std::uint64_t, 4, 4>(gen, 400);
}

FlowKey flow(std::uint64_t i) {
    FlowKey k;
    k.src_ip = static_cast<std::uint32_t>(0x0A000000u + i);
    k.dst_ip = static_cast<std::uint32_t>(0xC0A80000u + i * 7);
    k.src_port = static_cast<std::uint16_t>(1000 + i);
    k.dst_port = 443;
    k.proto = 6;
    return k;
}

TEST(SimdScan, FlowKeyKernelsMatchScalar) {
    fuzz_shape<FlowKey, 2, 2>(flow, 400);
    fuzz_shape<FlowKey, 4, 3>(flow, 400);
    fuzz_shape<FlowKey, 4, 4>(flow, 400);
}

/// The defining FlowKey case: a lane whose 13 defined bytes equal the probe
/// but whose pad bytes were corrupted (corrupt_key_at can hit them) must
/// still match — lane_eq never reads the pad, so neither may any kernel.
TEST(SimdScan, FlowKeyPadBytesAreIgnored) {
    for (std::size_t pad_byte = 13; pad_byte < 16; ++pad_byte) {
        alignas(64) FlowKey row[4] = {flow(1), flow(2), flow(3), flow(4)};
        reinterpret_cast<unsigned char*>(&row[1])[pad_byte] ^= 0xA5;
        const FlowKey probe = flow(2);
        ASSERT_TRUE(core::detail::lane_eq(row[1], probe));
        using K = ScanKernels<FlowKey, 4, 3>;
        for (const ScanKernel k : available_kernels()) {
            EXPECT_EQ(K::get(k)(row, probe), 0b010u)
                << "kernel " << kernel_name(k) << " pad byte " << pad_byte;
        }
    }
    // And the converse: a defined-byte difference is a real mismatch.
    alignas(64) FlowKey row[4] = {flow(1), flow(2), flow(3), flow(4)};
    reinterpret_cast<unsigned char*>(&row[1])[12] ^= 0x01;  // proto byte
    using K = ScanKernels<FlowKey, 4, 3>;
    for (const ScanKernel k : available_kernels()) {
        EXPECT_EQ(K::get(k)(row, flow(2)), 0u) << kernel_name(k);
    }
}

TEST(SimdScan, DuplicateLanesReportEveryMatch) {
    const FlowKey dup = flow(9);
    alignas(64) FlowKey row[4] = {flow(1), dup, dup, dup};
    using K = ScanKernels<FlowKey, 4, 4>;
    for (const ScanKernel k : available_kernels()) {
        EXPECT_EQ(K::get(k)(row, dup), 0b1110u) << kernel_name(k);
    }
}

// -- dispatch machinery ----------------------------------------------------

TEST(SimdDispatch, KernelNamesAndAvailability) {
    EXPECT_STREQ(kernel_name(ScanKernel::kScalar), "scalar");
    EXPECT_STREQ(kernel_name(ScanKernel::kSse2), "sse2");
    EXPECT_STREQ(kernel_name(ScanKernel::kAvx2), "avx2");
    EXPECT_STREQ(kernel_name(ScanKernel::kNeon), "neon");
    EXPECT_TRUE(kernel_available(ScanKernel::kScalar));
    // The dispatched kernel is always one the CPU can run.
    EXPECT_TRUE(kernel_available(dispatched_kernel()));
    const CpuFeatures f = cpu_features();
    EXPECT_EQ(kernel_available(ScanKernel::kSse2), f.sse2);
    EXPECT_EQ(kernel_available(ScanKernel::kAvx2), f.avx2);
    EXPECT_EQ(kernel_available(ScanKernel::kNeon), f.neon);
}

TEST(SimdDispatch, OverrideRefusesUnavailableKernels) {
    const CpuFeatures f = cpu_features();
    // At most one of the SIMD families exists in one build; the other is
    // always refusable.
    const ScanKernel missing =
        f.neon ? ScanKernel::kAvx2 : ScanKernel::kNeon;
    EXPECT_FALSE(kernel_available(missing));
    EXPECT_FALSE(set_kernel_override(missing));
    EXPECT_EQ(active_kernel(), dispatched_kernel());
}

TEST(SimdDispatch, OverrideRebindsAndClears) {
    ASSERT_TRUE(set_kernel_override(ScanKernel::kScalar));
    EXPECT_EQ(active_kernel(), ScanKernel::kScalar);
    clear_kernel_override();
    EXPECT_EQ(active_kernel(), dispatched_kernel());
}

// -- slab-level stream equivalence under each forced kernel ----------------

using Slab = SoaSlab<FlowKey, std::uint32_t, 3>;

struct SlabTrace {
    std::vector<std::uint64_t> results;  // packed UpdateResult stream
    std::vector<std::byte> planes;
};

/// Drive one slab through a mixed op stream — updates (heavy MRU re-hits),
/// finds, touches, and key-plane corruption that can land on pad bytes —
/// and fingerprint every observable outcome.
SlabTrace run_slab_trace() {
    constexpr std::size_t kUnits = 64;
    Slab slab(kUnits);
    SlabTrace t;
    std::mt19937_64 rng(0xB07A);
    const auto pack = [](const UpdateResult<FlowKey, std::uint32_t>& r) {
        return (std::uint64_t{r.hit} << 63) | (std::uint64_t{r.evicted} << 62) |
               (std::uint64_t{r.hit_pos} << 56) |
               (std::uint64_t{r.evicted_value} << 16) |
               (r.evicted_key.src_ip & 0xFFFFu);
    };
    for (int i = 0; i < 20'000; ++i) {
        const std::size_t b = rng() % kUnits;
        const auto key = flow(rng() % 8);  // few keys: MRU fast path dominates
        const auto v = static_cast<std::uint32_t>(rng());
        switch (rng() % 8) {
            case 6:
                t.results.push_back(slab.find_at(b, key).value_or(0xDEAD));
                break;
            case 7:
                // Corruption that may hit pad bytes (offset % 48 covers the
                // pad of all three lanes) — the scan must keep agreeing
                // with lane_eq afterwards.
                slab.corrupt_key_at(b, rng() % 48,
                                    static_cast<std::uint8_t>(rng() | 1));
                break;
            default:
                t.results.push_back(pack(slab.update_at(b, key, v)));
                break;
        }
    }
    slab.save_planes(t.planes);
    return t;
}

TEST(SimdSlabEquivalence, ForcedKernelsProduceIdenticalStreams) {
    clear_kernel_override();
    const SlabTrace ref = run_slab_trace();  // dispatched kernel
    for (const ScanKernel k : available_kernels()) {
        ASSERT_TRUE(set_kernel_override(k));
        const SlabTrace got = run_slab_trace();
        EXPECT_EQ(got.results, ref.results) << kernel_name(k);
        EXPECT_EQ(got.planes, ref.planes) << kernel_name(k);
        clear_kernel_override();
    }
}

}  // namespace
}  // namespace p4lru::core::simd
