#include "p4lru/core/lru_state.hpp"

#include <gtest/gtest.h>

#include "p4lru/core/permutation.hpp"

namespace p4lru::core {
namespace {

TEST(LruState, StartsAtIdentity) {
    const LruState<4> s;
    for (std::size_t i = 1; i <= 4; ++i) {
        EXPECT_EQ(s(i), i);
    }
    EXPECT_EQ(s.mru_slot(), 1u);
    EXPECT_EQ(s.lru_slot(), 4u);
}

TEST(LruState, ApplyHitAtOneIsIdentity) {
    LruState<3> s;
    s.apply_hit(2);  // move away from identity first
    const LruState<3> before = s;
    s.apply_hit(1);
    EXPECT_EQ(s, before);
}

TEST(LruState, PermutationRoundTrip) {
    const Permutation p({3, 1, 4, 2, 5});
    const auto s = LruState<5>::from_permutation(p);
    EXPECT_EQ(s.to_permutation(), p);
}

// The core algebra check: apply_hit(i) must equal premultiplication by the
// inverse rotation, S <- R^-1 x S (Step 2 of Algorithm 1), exhaustively for
// every state and hit position.
template <std::size_t N>
void check_all_transitions() {
    for (std::uint64_t rank = 0; rank < factorial(N); ++rank) {
        const Permutation s0 = Permutation::from_lehmer_rank(N, rank);
        for (std::size_t i = 1; i <= N; ++i) {
            auto fast = LruState<N>::from_permutation(s0);
            fast.apply_hit(i);
            const Permutation want =
                Permutation::rotation(N, i).inverse().compose(s0);
            EXPECT_EQ(fast.to_permutation(), want)
                << "N=" << N << " state=" << s0.to_string() << " i=" << i;
        }
    }
}

TEST(LruState, TransitionsMatchPermutationAlgebraN2) {
    check_all_transitions<2>();
}
TEST(LruState, TransitionsMatchPermutationAlgebraN3) {
    check_all_transitions<3>();
}
TEST(LruState, TransitionsMatchPermutationAlgebraN4) {
    check_all_transitions<4>();
}
TEST(LruState, TransitionsMatchPermutationAlgebraN5) {
    check_all_transitions<5>();
}

// The paper's Figure 3 walk-through, n = 5.
TEST(LruState, PaperFigure3Sequence) {
    LruState<5> s;  // identity
    s.apply_hit(4);  // K_D found at position 4
    EXPECT_EQ(s.to_permutation(), Permutation({4, 1, 2, 3, 5}));
    EXPECT_EQ(s.mru_slot(), 4u);  // V_D lives in val[4]
    s.apply_hit(5);  // K_F misses; full rotation
    EXPECT_EQ(s.to_permutation(), Permutation({5, 4, 1, 2, 3}));
    EXPECT_EQ(s.mru_slot(), 5u);  // V_F overwrites val[5]
}

TEST(LruState, MruSlotAlwaysTracksFirstMapping) {
    LruState<3> s;
    s.apply_hit(3);
    EXPECT_EQ(s.mru_slot(), s(1));
    s.apply_hit(2);
    EXPECT_EQ(s.mru_slot(), s(1));
}

}  // namespace
}  // namespace p4lru::core
