#include "p4lru/core/p4lru.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "../test_util.hpp"

namespace p4lru::core {
namespace {

using testutil::NaiveLru;
using testutil::random_keys;

TEST(P4lru, InsertIntoEmptyUnit) {
    P4lru<std::uint32_t, std::uint32_t, 3> u;
    const auto r = u.update(7, 70);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.evicted);
    EXPECT_EQ(u.size(), 1u);
    EXPECT_EQ(u.find(7), std::optional<std::uint32_t>(70));
}

TEST(P4lru, HitAtHeadKeepsOrder) {
    P4lru<std::uint32_t, std::uint32_t, 3> u;
    u.update(1, 10);
    const auto r = u.update(1, 11);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.hit_pos, 1u);
    EXPECT_EQ(u.find(1), std::optional<std::uint32_t>(11));  // ReplaceMerge
    EXPECT_EQ(u.size(), 1u);
}

TEST(P4lru, EvictionFollowsLruOrder) {
    P4lru<std::uint32_t, std::uint32_t, 3> u;
    u.update(1, 10);
    u.update(2, 20);
    u.update(3, 30);
    // LRU order is now 3, 2, 1; touching 1 promotes it.
    u.update(1, 11);
    const auto r = u.update(4, 40);  // must evict 2 (least recent)
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evicted_key, 2u);
    EXPECT_EQ(r.evicted_value, 20u);
    EXPECT_FALSE(u.contains(2));
    EXPECT_TRUE(u.contains(1));
    EXPECT_TRUE(u.contains(3));
    EXPECT_TRUE(u.contains(4));
}

TEST(P4lru, ValuesFollowKeysThroughStateIndirection) {
    // Figure 3 of the paper, replayed on the value plane: values never move;
    // the mapping does.
    P4lru<std::string, std::string, 5> u;
    u.update("A", "VA");
    u.update("B", "VB");
    u.update("C", "VC");
    u.update("D", "VD");
    u.update("E", "VE");
    // After warm-up in insertion order, LRU order is E D C B A.
    // (Inserting into a non-full unit rotates only the occupied prefix.)
    u.update("D", "VD2");  // Example 1: hit
    EXPECT_EQ(u.key_at(1), "D");
    EXPECT_EQ(u.value_at(1), "VD2");
    auto r = u.update("F", "VF");  // Example 2: miss, evicts LRU key
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evicted_key, "A");
    EXPECT_EQ(r.evicted_value, "VA");
    EXPECT_EQ(u.key_at(1), "F");
    EXPECT_EQ(u.value_at(1), "VF");
    // Every surviving key still maps to its own value.
    EXPECT_EQ(u.find("B"), std::optional<std::string>("VB"));
    EXPECT_EQ(u.find("C"), std::optional<std::string>("VC"));
    EXPECT_EQ(u.find("D"), std::optional<std::string>("VD2"));
    EXPECT_EQ(u.find("E"), std::optional<std::string>("VE"));
}

TEST(P4lru, AddMergeAccumulates) {
    P4lru<std::uint32_t, std::uint64_t, 2, AddMerge> u;
    u.update(5, 100);
    u.update(5, 50);
    EXPECT_EQ(u.find(5), std::optional<std::uint64_t>(150));
}

TEST(P4lru, PerCallMergeOverridesMember) {
    P4lru<std::uint32_t, std::uint64_t, 2> u;  // ReplaceMerge by default
    u.update(5, 100);
    u.update(5, 1, KeepMerge{});
    EXPECT_EQ(u.find(5), std::optional<std::uint64_t>(100));
    u.update(5, 7, AddMerge{});
    EXPECT_EQ(u.find(5), std::optional<std::uint64_t>(107));
}

TEST(P4lru, TouchPromotesOnlyExistingKeys) {
    P4lru<std::uint32_t, std::uint32_t, 3> u;
    u.update(1, 10);
    u.update(2, 20);
    EXPECT_FALSE(u.touch(9, 90));
    EXPECT_FALSE(u.contains(9));
    EXPECT_TRUE(u.touch(1, 10));
    EXPECT_EQ(u.key_at(1), 1u);
}

TEST(P4lru, TouchAbsentLeavesUnitUntouched) {
    // The one-pass touch rotates the prefix while scanning; on a miss it must
    // restore key order, values and state exactly — full and non-full units.
    for (const std::size_t fill : {2u, 3u}) {
        P4lru<std::uint32_t, std::uint32_t, 3> u;
        for (std::uint32_t k = 1; k <= fill; ++k) u.update(k, k * 10);
        const auto before_state = u.state();
        std::vector<std::uint32_t> keys, vals;
        for (std::size_t i = 1; i <= u.size(); ++i) {
            keys.push_back(u.key_at(i));
            vals.push_back(u.value_at(i));
        }
        EXPECT_FALSE(u.touch(99, 990));
        EXPECT_EQ(u.size(), fill);
        EXPECT_EQ(u.state(), before_state);
        for (std::size_t i = 1; i <= u.size(); ++i) {
            EXPECT_EQ(u.key_at(i), keys[i - 1]);
            EXPECT_EQ(u.value_at(i), vals[i - 1]);
        }
    }
}

TEST(P4lru, TouchHitMatchesUpdate) {
    P4lru<std::uint32_t, std::uint32_t, 3> a;
    P4lru<std::uint32_t, std::uint32_t, 3> b;
    for (std::uint32_t k = 1; k <= 3; ++k) {
        a.update(k, k * 10);
        b.update(k, k * 10);
    }
    EXPECT_TRUE(a.touch(2, 99));
    b.update(2, 99);
    for (std::size_t i = 1; i <= 3; ++i) {
        EXPECT_EQ(a.key_at(i), b.key_at(i));
        EXPECT_EQ(a.value_at(i), b.value_at(i));
    }
}

TEST(P4lru, InsertLruPlacesAtTail) {
    P4lru<std::uint32_t, std::uint32_t, 3> u;
    u.update(1, 10);
    u.update(2, 20);
    u.update(3, 30);  // order: 3 2 1
    const auto displaced = u.insert_lru(4, 40);
    ASSERT_TRUE(displaced.has_value());
    EXPECT_EQ(displaced->first, 1u);
    EXPECT_EQ(displaced->second, 10u);
    EXPECT_EQ(u.key_at(3), 4u);   // new key is least recent
    EXPECT_EQ(u.value_at(3), 40u);
    EXPECT_EQ(u.key_at(1), 3u);   // head untouched
}

TEST(P4lru, InsertLruIntoNonFullUnitExtendsPrefix) {
    P4lru<std::uint32_t, std::uint32_t, 3> u;
    u.update(1, 10);
    EXPECT_FALSE(u.insert_lru(2, 20).has_value());
    EXPECT_EQ(u.size(), 2u);
    EXPECT_EQ(u.key_at(2), 2u);
    EXPECT_EQ(u.find(2), std::optional<std::uint32_t>(20));
}

TEST(P4lru, InsertLruRefreshesExistingKeyInPlace) {
    P4lru<std::uint32_t, std::uint32_t, 3> u;
    u.update(1, 10);
    u.update(2, 20);
    EXPECT_FALSE(u.insert_lru(1, 99).has_value());
    EXPECT_EQ(u.find(1), std::optional<std::uint32_t>(99));
    EXPECT_EQ(u.key_at(1), 2u);  // recency unchanged
}

// ---- Property tests: P4lru must behave exactly like a strict LRU ---------

struct EquivParam {
    std::size_t n;
    std::uint32_t universe;
    std::uint64_t seed;
};

class P4lruEquivalence : public ::testing::TestWithParam<EquivParam> {};

TEST_P(P4lruEquivalence, MatchesNaiveLruExactly) {
    const auto [n, universe, seed] = GetParam();
    NaiveLru<std::uint32_t, std::uint64_t> ref(n);

    const auto run = [&](auto& unit) {
        const auto keys = random_keys(20'000, universe, seed);
        std::uint64_t tick = 0;
        for (const std::uint32_t k : keys) {
            const std::uint64_t v = ++tick;
            const auto got = unit.update(k, v, AddMerge{});
            const auto want = ref.update(
                k, v, [](std::uint64_t a, std::uint64_t b) { return a + b; });
            ASSERT_EQ(got.hit, want.hit) << "key " << k << " tick " << tick;
            ASSERT_EQ(got.evicted, want.evicted.has_value());
            if (want.evicted) {
                ASSERT_EQ(got.evicted_key, want.evicted->first);
                ASSERT_EQ(got.evicted_value, want.evicted->second);
            }
            // Spot-check the full mapping every 1000 ops.
            if (tick % 1000 == 0) {
                for (std::uint32_t probe = 1; probe <= universe; ++probe) {
                    ASSERT_EQ(unit.find(probe), ref.find(probe));
                }
                for (std::size_t pos = 1; pos <= ref.size(); ++pos) {
                    ASSERT_EQ(unit.key_at(pos), ref.key_at(pos));
                }
            }
        }
    };

    switch (n) {
        case 1: { P4lru<std::uint32_t, std::uint64_t, 1> u; run(u); break; }
        case 2: { P4lru<std::uint32_t, std::uint64_t, 2> u; run(u); break; }
        case 3: { P4lru<std::uint32_t, std::uint64_t, 3> u; run(u); break; }
        case 4: { P4lru<std::uint32_t, std::uint64_t, 4> u; run(u); break; }
        case 5: { P4lru<std::uint32_t, std::uint64_t, 5> u; run(u); break; }
        case 6: { P4lru<std::uint32_t, std::uint64_t, 6> u; run(u); break; }
        default: FAIL() << "unsupported n";
    }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndWorkloads, P4lruEquivalence,
    ::testing::Values(EquivParam{1, 4, 11}, EquivParam{2, 4, 12},
                      EquivParam{2, 16, 13}, EquivParam{3, 5, 14},
                      EquivParam{3, 64, 15}, EquivParam{4, 8, 16},
                      EquivParam{5, 10, 17}, EquivParam{6, 24, 18}));

}  // namespace
}  // namespace p4lru::core
