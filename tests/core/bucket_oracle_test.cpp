// Property: a parallel-connected P4LRU_N array is EXACTLY a collection of
// independent strict-LRU caches, one per bucket. We shadow every bucket
// with a NaiveLru oracle and require packet-by-packet agreement — across
// unit sizes, seeds and workload skews (TEST_P sweep).
#include <gtest/gtest.h>

#include <unordered_map>

#include "../test_util.hpp"
#include "p4lru/core/p4lru4.hpp"
#include "p4lru/core/p4lru_encoded.hpp"
#include "p4lru/core/parallel_array.hpp"

namespace p4lru::core {
namespace {

using testutil::NaiveLru;
using testutil::random_keys;

struct OracleParam {
    std::size_t units;
    std::uint32_t universe;
    double repeat_bias;
    std::uint64_t seed;
};

class BucketOracle : public ::testing::TestWithParam<OracleParam> {};

template <typename Array>
void run_against_oracles(Array& array, std::size_t capacity,
                         const OracleParam& p) {
    std::unordered_map<std::size_t, NaiveLru<std::uint32_t, std::uint32_t>>
        oracles;
    const auto keys = random_keys(25'000, p.universe, p.seed, p.repeat_bias);
    std::size_t tick = 0;
    for (const auto k : keys) {
        ++tick;
        const auto v = static_cast<std::uint32_t>(tick % 4096 + 1);
        const std::size_t bucket = array.bucket(k);
        auto [it, inserted] = oracles.try_emplace(bucket, capacity);
        const auto got = array.update(k, v);
        const auto want = it->second.update(k, v);
        ASSERT_EQ(got.hit, want.hit) << "tick " << tick << " key " << k;
        ASSERT_EQ(got.evicted, want.evicted.has_value()) << "tick " << tick;
        if (want.evicted) {
            ASSERT_EQ(got.evicted_key, want.evicted->first) << "tick " << tick;
            ASSERT_EQ(got.evicted_value, want.evicted->second)
                << "tick " << tick;
        }
    }
    // Terminal state: every oracle's contents equal the unit's contents.
    for (const auto& [bucket, oracle] : oracles) {
        for (std::uint32_t probe = 1; probe <= p.universe; ++probe) {
            if (array.bucket(probe) != bucket) continue;
            ASSERT_EQ(array.find(probe), oracle.find(probe)) << probe;
        }
    }
}

TEST_P(BucketOracle, Behavioural3MatchesPerBucketStrictLru) {
    const auto p = GetParam();
    ParallelCache<P4lru<std::uint32_t, std::uint32_t, 3>, std::uint32_t,
                  std::uint32_t>
        array(p.units, static_cast<std::uint32_t>(p.seed));
    run_against_oracles(array, 3, p);
}

TEST_P(BucketOracle, Encoded3MatchesPerBucketStrictLru) {
    const auto p = GetParam();
    ParallelCache<P4lru3Encoded<std::uint32_t, std::uint32_t>, std::uint32_t,
                  std::uint32_t>
        array(p.units, static_cast<std::uint32_t>(p.seed));
    run_against_oracles(array, 3, p);
}

TEST_P(BucketOracle, Encoded2MatchesPerBucketStrictLru) {
    const auto p = GetParam();
    ParallelCache<P4lru2Encoded<std::uint32_t, std::uint32_t>, std::uint32_t,
                  std::uint32_t>
        array(p.units, static_cast<std::uint32_t>(p.seed));
    run_against_oracles(array, 2, p);
}

TEST_P(BucketOracle, Encoded4MatchesPerBucketStrictLru) {
    const auto p = GetParam();
    ParallelCache<P4lru4Encoded<std::uint32_t, std::uint32_t>, std::uint32_t,
                  std::uint32_t>
        array(p.units, static_cast<std::uint32_t>(p.seed));
    run_against_oracles(array, 4, p);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BucketOracle,
    ::testing::Values(OracleParam{1, 12, 0.5, 101},
                      OracleParam{4, 60, 0.3, 102},
                      OracleParam{16, 300, 0.5, 103},
                      OracleParam{64, 2000, 0.7, 104},
                      OracleParam{256, 10000, 0.2, 105}));

}  // namespace
}  // namespace p4lru::core
