// Property suite for the SoA slab: the flat struct-of-arrays layout must be
// observationally bit-identical to an array of behavioural P4lru units.
//
//   * the packed 2-bit-per-position meta codec is cross-checked against
//     LruState<N> over random apply_hit sequences;
//   * a SoaSlab unit driven by random update/touch/insert_lru/find streams
//     must emit the exact UpdateResult stream and final contents of a P4lru
//     unit, for every N in 1..4 and every merge policy;
//   * a whole ParallelCache on slab storage must match the AoS reference
//     array op for op;
//   * deferred first-touch initialization must converge to the same state as
//     eager construction.
#include "p4lru/core/soa_slab.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../test_util.hpp"
#include "p4lru/common/random.hpp"
#include "p4lru/core/lru_state.hpp"
#include "p4lru/core/p4lru.hpp"
#include "p4lru/core/parallel_array.hpp"

namespace p4lru::core {
namespace {

using K = std::uint32_t;
using V = std::uint32_t;

template <typename Key, typename Value>
void expect_same_result(const UpdateResult<Key, Value>& a,
                        const UpdateResult<Key, Value>& b,
                        std::size_t op_index) {
    ASSERT_EQ(a.hit, b.hit) << "op " << op_index;
    ASSERT_EQ(a.hit_pos, b.hit_pos) << "op " << op_index;
    ASSERT_EQ(a.evicted, b.evicted) << "op " << op_index;
    if (a.evicted) {
        ASSERT_EQ(a.evicted_key, b.evicted_key) << "op " << op_index;
        ASSERT_EQ(a.evicted_value, b.evicted_value) << "op " << op_index;
    }
}

// -- packed-state codec vs LruState ------------------------------------

template <std::size_t N>
void codec_matches_lru_state() {
    using Slab = SoaSlab<K, V, N>;
    rng::Xoshiro256 rng(0xC0DEC + N);
    for (int trial = 0; trial < 200; ++trial) {
        LruState<N> ref;
        typename Slab::MetaWord m = Slab::identity_meta();
        for (int step = 0; step < 64; ++step) {
            const auto i = static_cast<std::size_t>(rng.between(1, N));
            ref.apply_hit(i);
            m = Slab::apply_hit(m, i);
            for (std::size_t j = 1; j <= N; ++j) {
                ASSERT_EQ(Slab::slot_of(m, j), ref(j))
                    << "N=" << N << " trial=" << trial << " step=" << step;
            }
        }
    }
}

TEST(SoaMetaCodec, MatchesLruStateN2) { codec_matches_lru_state<2>(); }
TEST(SoaMetaCodec, MatchesLruStateN3) { codec_matches_lru_state<3>(); }
TEST(SoaMetaCodec, MatchesLruStateN4) { codec_matches_lru_state<4>(); }

TEST(SoaMetaCodec, IdentityAndOccupancy) {
    using Slab3 = SoaSlab<K, V, 3>;
    auto m = Slab3::identity_meta();
    EXPECT_EQ(Slab3::occupancy(m), 0u);
    for (std::size_t j = 1; j <= 3; ++j) EXPECT_EQ(Slab3::slot_of(m, j), j);
    m = static_cast<Slab3::MetaWord>(m + (1u << Slab3::kPermBits));
    m = static_cast<Slab3::MetaWord>(m + (1u << Slab3::kPermBits));
    EXPECT_EQ(Slab3::occupancy(m), 2u);
    // Occupancy bits survive permutation rotations.
    m = Slab3::apply_hit(m, 2);
    EXPECT_EQ(Slab3::occupancy(m), 2u);
}

// -- single-unit op-stream equivalence vs P4lru ------------------------

/// Drive slab unit 0 and a P4lru unit with an identical random op stream of
/// update / touch / insert_lru / find, asserting identical observable
/// behaviour at every step and identical final contents.
template <std::size_t N, typename Merge>
void unit_stream_equivalence(std::uint64_t seed) {
    SoaSlab<K, V, N, Merge> slab(1);
    P4lru<K, V, N, Merge> unit;
    rng::Xoshiro256 rng(seed);

    for (int op = 0; op < 4000; ++op) {
        // Small key universe so hits, misses and evictions all occur often.
        const auto k = static_cast<K>(rng.between(1, 2 * N + 2));
        const auto v = static_cast<V>(rng.between(1, 1'000'000));
        switch (rng.between(0, 3)) {
            case 0: {
                expect_same_result(slab.update_at(0, k, v), unit.update(k, v),
                                   static_cast<std::size_t>(op));
                break;
            }
            case 1: {
                ASSERT_EQ(slab.touch_at(0, k, v), unit.touch(k, v))
                    << "op " << op;
                break;
            }
            case 2: {
                const auto a = slab.insert_lru_at(0, k, v);
                const auto b = unit.insert_lru(k, v);
                ASSERT_EQ(a.has_value(), b.has_value()) << "op " << op;
                if (a) {
                    ASSERT_EQ(a->first, b->first) << "op " << op;
                    ASSERT_EQ(a->second, b->second) << "op " << op;
                }
                break;
            }
            default: {
                ASSERT_EQ(slab.find_at(0, k), unit.find(k)) << "op " << op;
                break;
            }
        }
        ASSERT_EQ(slab.size_at(0), unit.size()) << "op " << op;
    }

    // Final contents: key order and per-key value slots.
    const auto view = slab.unit(0);
    ASSERT_EQ(view.size(), unit.size());
    for (std::size_t i = 1; i <= unit.size(); ++i) {
        EXPECT_EQ(view.key_at(i), unit.key_at(i));
        EXPECT_EQ(view.value_at(i), unit.value_at(i));
    }
}

template <std::size_t N>
void unit_stream_equivalence_all_merges() {
    unit_stream_equivalence<N, ReplaceMerge>(0x5AB0 + N);
    unit_stream_equivalence<N, AddMerge>(0x5AB1 + N);
    unit_stream_equivalence<N, KeepMerge>(0x5AB2 + N);
}

TEST(SoaSlabVsP4lru, OpStreamBitIdenticalN1) {
    unit_stream_equivalence_all_merges<1>();
}
TEST(SoaSlabVsP4lru, OpStreamBitIdenticalN2) {
    unit_stream_equivalence_all_merges<2>();
}
TEST(SoaSlabVsP4lru, OpStreamBitIdenticalN3) {
    unit_stream_equivalence_all_merges<3>();
}
TEST(SoaSlabVsP4lru, OpStreamBitIdenticalN4) {
    unit_stream_equivalence_all_merges<4>();
}

/// Per-call merge overload must match too (the read-pass/write-pass split).
TEST(SoaSlabVsP4lru, PerCallMergeOverload) {
    SoaSlab<K, V, 3> slab(1);
    P4lru<K, V, 3> unit;
    rng::Xoshiro256 rng(0xCA11);
    for (int op = 0; op < 2000; ++op) {
        const auto k = static_cast<K>(rng.between(1, 8));
        const auto v = static_cast<V>(rng.between(1, 1000));
        if (rng.chance(0.5)) {
            expect_same_result(slab.update_at(0, k, v, KeepMerge{}),
                               unit.update(k, v, KeepMerge{}),
                               static_cast<std::size_t>(op));
        } else {
            expect_same_result(slab.update_at(0, k, v, AddMerge{}),
                               unit.update(k, v, AddMerge{}),
                               static_cast<std::size_t>(op));
        }
    }
}

// -- whole-array equivalence via ParallelCache -------------------------

using Unit3 = P4lru<K, V, 3>;
using SoaCache = ParallelCache<Unit3, K, V>;  // defaults to the slab
using AosCache = AosParallelCache<Unit3, K, V>;

static_assert(std::is_same_v<SoaCache::storage_type, SoaSlab<K, V, 3>>,
              "slab must be the default storage for behavioural P4lru units");
static_assert(
    std::is_same_v<AosCache::storage_type, AosStorage<Unit3, K, V>>);

// Unit types the slab cannot hold stay on the AoS reference layout.
static_assert(std::is_same_v<
              default_storage_t<P4lru<std::string, std::string, 3>,
                                std::string, std::string>,
              AosStorage<P4lru<std::string, std::string, 3>, std::string,
                         std::string>>);
static_assert(std::is_same_v<default_storage_t<P4lru<K, V, 6>, K, V>,
                             AosStorage<P4lru<K, V, 6>, K, V>>);

TEST(SoaVsAosArray, ZipfStreamBitIdentical) {
    SoaCache soa(256, 0xA11CE);
    AosCache aos(256, 0xA11CE);
    const auto keys = testutil::random_keys(60'000, 2048, 0xFEED, 0.55);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        expect_same_result(soa.update(keys[i], keys[i] * 3 + 1),
                           aos.update(keys[i], keys[i] * 3 + 1), i);
    }
    ASSERT_EQ(soa.size(), aos.size());
    for (std::size_t u = 0; u < soa.unit_count(); ++u) {
        const auto view = soa.unit(u);
        const auto& unit = aos.unit(u);
        ASSERT_EQ(view.size(), unit.size()) << "unit " << u;
        for (std::size_t i = 1; i <= unit.size(); ++i) {
            EXPECT_EQ(view.key_at(i), unit.key_at(i)) << "unit " << u;
            EXPECT_EQ(view.value_at(i), unit.value_at(i)) << "unit " << u;
        }
    }
}

TEST(SoaVsAosArray, MixedOpStreamBitIdentical) {
    SoaCache soa(64, 0xB0B);
    AosCache aos(64, 0xB0B);
    rng::Xoshiro256 rng(0x717);
    for (int op = 0; op < 30'000; ++op) {
        const auto k = static_cast<K>(rng.between(1, 700));
        const auto v = static_cast<V>(rng.between(1, 1'000'000));
        switch (rng.between(0, 3)) {
            case 0:
                expect_same_result(soa.update(k, v), aos.update(k, v),
                                   static_cast<std::size_t>(op));
                break;
            case 1:
                ASSERT_EQ(soa.touch(k, v), aos.touch(k, v)) << "op " << op;
                break;
            case 2: {
                const auto a = soa.insert_lru(k, v);
                const auto b = aos.insert_lru(k, v);
                ASSERT_EQ(a, b) << "op " << op;
                break;
            }
            default:
                ASSERT_EQ(soa.find(k), aos.find(k)) << "op " << op;
                break;
        }
    }
    ASSERT_EQ(soa.size(), aos.size());
}

TEST(SoaVsAosArray, FlowKeyStreamBitIdentical) {
    using FUnit = P4lru<FlowKey, std::uint32_t, 2>;
    ParallelCache<FUnit, FlowKey, std::uint32_t> soa(128, 0xF10);
    AosParallelCache<FUnit, FlowKey, std::uint32_t> aos(128, 0xF10);
    static_assert(std::is_same_v<decltype(soa)::storage_type,
                                 SoaSlab<FlowKey, std::uint32_t, 2>>);
    rng::Xoshiro256 rng(0xF10F10);
    for (int op = 0; op < 20'000; ++op) {
        const auto f =
            testutil::make_flow(static_cast<std::uint32_t>(rng.between(1, 900)));
        const auto v = static_cast<std::uint32_t>(rng.between(1, 9000));
        expect_same_result(soa.update(f, v), aos.update(f, v),
                           static_cast<std::size_t>(op));
    }
    ASSERT_EQ(soa.size(), aos.size());
}

// -- first-touch protocol ----------------------------------------------

TEST(SoaFirstTouch, DeferredInitConvergesToEagerState) {
    SoaCache eager(128, 0xD1);
    SoaCache deferred(128, 0xD1, defer_init);
    EXPECT_TRUE(eager.materialized());
    EXPECT_FALSE(deferred.materialized());

    // Cover [0, units) in disjoint chunks, as the replay workers do.
    deferred.first_touch_range(0, 31);
    deferred.first_touch_range(31, 100);
    deferred.first_touch_range(100, 128);
    deferred.mark_materialized();
    EXPECT_TRUE(deferred.materialized());

    const auto keys = testutil::random_keys(20'000, 1024, 0xD1D1, 0.5);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        expect_same_result(deferred.update(keys[i], keys[i] + 9),
                           eager.update(keys[i], keys[i] + 9), i);
    }
    ASSERT_EQ(deferred.size(), eager.size());
}

TEST(SoaFirstTouch, FirstTouchNeverReinitializesLiveCache) {
    SoaCache cache(16, 0x11);
    cache.update(42, 7);
    const std::size_t before = cache.size();
    // A stray first_touch on a materialized cache must be a no-op.
    cache.first_touch_range(0, 16);
    EXPECT_EQ(cache.size(), before);
    EXPECT_EQ(cache.find(42), std::optional<V>(7));
}

TEST(SoaFirstTouch, MaterializeCoversWholeDeferredSlab) {
    SoaCache deferred(32, 0x22, defer_init);
    deferred.materialize();
    EXPECT_TRUE(deferred.materialized());
    EXPECT_EQ(deferred.size(), 0u);
    deferred.update(5, 50);
    EXPECT_EQ(deferred.find(5), std::optional<V>(50));
}

TEST(SoaFirstTouch, AosStorageIsAlwaysMaterialized) {
    AosCache aos(8, 0x33, defer_init);
    EXPECT_TRUE(aos.materialized());
    aos.update(1, 2);
    EXPECT_EQ(aos.find(1), std::optional<V>(2));
}

// -- UnitView vocabulary -----------------------------------------------

TEST(SoaUnitView, MatchesP4lruAccessors) {
    SoaSlab<K, V, 3> slab(1);
    P4lru<K, V, 3> unit;
    for (K k : {10u, 20u, 30u, 20u, 40u}) {
        slab.update_at(0, k, k * 2);
        unit.update(k, k * 2);
    }
    const auto view = slab.unit(0);
    EXPECT_EQ(view.size(), unit.size());
    EXPECT_EQ(view.capacity(), unit.capacity());
    EXPECT_EQ(view.full(), unit.full());
    for (std::size_t i = 1; i <= unit.size(); ++i) {
        EXPECT_EQ(view.key_at(i), unit.key_at(i));
        EXPECT_EQ(view.value_at(i), unit.value_at(i));
    }
    EXPECT_EQ(view.contains(20), unit.contains(20));
    EXPECT_EQ(view.contains(999), unit.contains(999));
    EXPECT_EQ(view.find(40), unit.find(40));
}

}  // namespace
}  // namespace p4lru::core
