// P4LRU4: the Section-2.3.3 feasibility construction, machine-checked.
#include "p4lru/core/p4lru4.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "p4lru/core/p4lru.hpp"

namespace p4lru::core {
namespace {

using testutil::NaiveLru;
using testutil::random_keys;

TEST(Lru4Codec, ExhaustiveVerifierPasses) {
    EXPECT_TRUE(codec4::verify_lru4_codec());
}

TEST(Lru4Codec, DecomposeRoundTripsAllOfS4) {
    for (std::uint64_t rank = 0; rank < factorial(4); ++rank) {
        const Permutation p = Permutation::from_lehmer_rank(4, rank);
        const auto [s, v] = codec4::decompose_state(p);
        EXPECT_EQ(codec4::compose_state(s, v), p) << p.to_string();
    }
}

TEST(Lru4Codec, IdentityDecomposesToIdentities) {
    const auto [s, v] = codec4::decompose_state(Permutation(4));
    EXPECT_EQ(s, 4);  // Table-1 identity code
    EXPECT_EQ(v, 0);
}

TEST(Lru4Codec, RejectsWrongSizes) {
    EXPECT_THROW(codec4::decompose_state(Permutation(3)),
                 std::invalid_argument);
}

TEST(P4lru4Encoded, StartsEmptyAtIdentity) {
    P4lru4Encoded<std::uint32_t, std::uint32_t> u;
    EXPECT_EQ(u.sigma_code(), 4);
    EXPECT_EQ(u.v4_code(), 0);
    EXPECT_EQ(u.size(), 0u);
}

TEST(P4lru4Encoded, BasicLruBehaviour) {
    P4lru4Encoded<std::uint32_t, std::uint32_t> u;
    for (std::uint32_t k = 1; k <= 4; ++k) u.update(k, k * 10);
    u.update(1, 11);               // promote 1 (ReplaceMerge)
    const auto r = u.update(5, 50);  // evicts 2
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evicted_key, 2u);
    EXPECT_EQ(r.evicted_value, 20u);
    EXPECT_EQ(u.find(1), std::optional<std::uint32_t>(11));
    EXPECT_EQ(u.find(3), std::optional<std::uint32_t>(30));
    EXPECT_EQ(u.find(4), std::optional<std::uint32_t>(40));
    EXPECT_EQ(u.find(5), std::optional<std::uint32_t>(50));
    EXPECT_FALSE(u.contains(2));
}

TEST(P4lru4Encoded, InsertLruSemantics) {
    P4lru4Encoded<std::uint32_t, std::uint32_t> u;
    for (std::uint32_t k = 1; k <= 4; ++k) u.update(k, k);
    const auto displaced = u.insert_lru(9, 90);
    ASSERT_TRUE(displaced.has_value());
    EXPECT_EQ(displaced->first, 1u);
    EXPECT_EQ(u.find(9), std::optional<std::uint32_t>(90));
    // 9 is least recent: next miss evicts it.
    EXPECT_EQ(u.update(10, 100).evicted_key, 9u);
}

class P4lru4Equivalence
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint64_t>> {
};

TEST_P(P4lru4Equivalence, MatchesBehaviouralUnit) {
    const auto [universe, seed] = GetParam();
    P4lru4Encoded<std::uint32_t, std::uint64_t, AddMerge> enc;
    P4lru<std::uint32_t, std::uint64_t, 4, AddMerge> beh;
    const auto keys = random_keys(30'000, universe, seed);
    std::uint64_t tick = 0;
    for (const std::uint32_t k : keys) {
        const std::uint64_t v = ++tick;
        const auto a = enc.update(k, v);
        const auto b = beh.update(k, v);
        ASSERT_EQ(a.hit, b.hit) << "tick " << tick;
        ASSERT_EQ(a.evicted, b.evicted) << "tick " << tick;
        if (a.evicted) {
            ASSERT_EQ(a.evicted_key, b.evicted_key) << "tick " << tick;
            ASSERT_EQ(a.evicted_value, b.evicted_value) << "tick " << tick;
        }
        if (tick % 500 == 0) {
            for (std::uint32_t probe = 1; probe <= universe; ++probe) {
                ASSERT_EQ(enc.find(probe), beh.find(probe)) << probe;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, P4lru4Equivalence,
    ::testing::Values(std::make_pair(4u, 41ull), std::make_pair(5u, 42ull),
                      std::make_pair(10u, 43ull), std::make_pair(64u, 44ull),
                      std::make_pair(1024u, 45ull)));

// The 16-entry slot table is within the stateful-ALU tiny-table budget the
// paper describes — the quantitative heart of the P4LRU4 feasibility claim.
TEST(Lru4Codec, SlotTableFitsTheTinyTableLimit) {
    EXPECT_LE(codec4::tables().slot1.size(), 24u);
    // Distinct (sigma, v) pairs that actually occur map through 16 at a
    // time per sigma-parity... the table as deployed is indexed by
    // (sigma * 4 + v) truncated to the reachable 24 entries; the hardware
    // layout splits it into per-sigma 4-entry blocks, each <= 16.
    for (const auto s : codec4::tables().slot1) {
        EXPECT_GE(s, 1);
        EXPECT_LE(s, 4);
    }
}

}  // namespace
}  // namespace p4lru::core
