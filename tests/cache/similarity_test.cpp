#include "p4lru/cache/similarity.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "../test_util.hpp"
#include "p4lru/cache/policy.hpp"

namespace p4lru::cache {
namespace {

TEST(SimilarityTracker, IdealLruScoresExactlyOne) {
    SimilarityTracker<std::uint32_t> t(100'000);
    IdealLruPolicy<std::uint32_t, std::uint32_t> lru(16);
    const auto keys = testutil::random_keys(20'000, 200, 42, 0.3);
    for (const auto k : keys) {
        const auto a = lru.access(k, k, 0);
        if (a.evicted) t.on_evict(a.evicted_key);
        t.on_access(k);
    }
    ASSERT_GT(t.evictions(), 100u);
    EXPECT_DOUBLE_EQ(t.similarity(), 1.0);
}

TEST(SimilarityTracker, EvictingTheNewestScoresOneOverN) {
    SimilarityTracker<std::uint32_t> t(100);
    for (std::uint32_t k = 1; k <= 10; ++k) t.on_access(k);
    // Evicting key 10 (the most recent of 10): rank 1 -> 1/10.
    t.on_evict(10);
    EXPECT_DOUBLE_EQ(t.similarity(), 0.1);
}

TEST(SimilarityTracker, EvictingTheOldestScoresOne) {
    SimilarityTracker<std::uint32_t> t(100);
    for (std::uint32_t k = 1; k <= 10; ++k) t.on_access(k);
    t.on_evict(1);
    EXPECT_DOUBLE_EQ(t.similarity(), 1.0);
}

TEST(SimilarityTracker, ReaccessMovesKeyToNewest) {
    SimilarityTracker<std::uint32_t> t(100);
    for (std::uint32_t k = 1; k <= 4; ++k) t.on_access(k);
    t.on_access(1);  // 1 becomes newest
    t.on_evict(1);   // rank 1 of 4 -> 0.25
    EXPECT_DOUBLE_EQ(t.similarity(), 0.25);
}

TEST(SimilarityTracker, EvictUnknownKeyThrows) {
    SimilarityTracker<std::uint32_t> t(10);
    t.on_access(1);
    EXPECT_THROW(t.on_evict(2), std::logic_error);
}

TEST(SimilarityTracker, RemoveDoesNotScore) {
    SimilarityTracker<std::uint32_t> t(10);
    t.on_access(1);
    t.on_access(2);
    t.on_remove(1);
    EXPECT_EQ(t.evictions(), 0u);
    EXPECT_EQ(t.cached(), 1u);
}

TEST(SimilarityTracker, ExceedingMaxAccessesThrows) {
    SimilarityTracker<std::uint32_t> t(3);
    t.on_access(1);
    t.on_access(2);
    t.on_access(3);  // exactly at the budget: fine
    EXPECT_THROW(t.on_access(4), std::logic_error);
}

// Brute-force cross-check of the Fenwick ranking on random workloads.
TEST(SimilarityTracker, MatchesBruteForceRanks) {
    const std::size_t ops = 5'000;
    SimilarityTracker<std::uint32_t> t(ops + 10);
    std::unordered_map<std::uint32_t, std::size_t> last;  // brute force
    std::size_t seq = 0;

    rng::Xoshiro256 rng(7);
    stats::Running brute_samples;
    for (std::size_t i = 0; i < ops; ++i) {
        const auto k =
            static_cast<std::uint32_t>(rng.between(1, 40));
        if (rng.chance(0.25) && last.contains(k)) {
            // brute-force rank: 1 + #entries newer than k
            std::size_t newer = 0;
            for (const auto& [key, s] : last) {
                newer += s > last.at(k) ? 1 : 0;
            }
            brute_samples.add(static_cast<double>(newer + 1) /
                              static_cast<double>(last.size()));
            t.on_evict(k);
            last.erase(k);
        } else {
            t.on_access(k);
            last[k] = ++seq;
        }
    }
    ASSERT_GT(t.evictions(), 100u);
    EXPECT_NEAR(t.similarity(), brute_samples.mean(), 1e-12);
}

// FIFO (insertion order, no recency update) must score below ideal LRU on a
// re-referencing stream: it evicts recently re-used entries.
TEST(SimilarityTracker, FifoScoresBelowLru) {
    SimilarityTracker<std::uint32_t> t(200'000);
    std::vector<std::uint32_t> fifo;  // front = oldest
    const std::size_t cap = 32;
    const auto keys = testutil::random_keys(30'000, 300, 9, 0.45);
    for (const auto k : keys) {
        const bool cached =
            std::find(fifo.begin(), fifo.end(), k) != fifo.end();
        if (!cached) {
            fifo.push_back(k);
            if (fifo.size() > cap) {
                t.on_evict(fifo.front());
                fifo.erase(fifo.begin());
            }
            t.on_access(k);
        } else {
            t.on_access(k);  // recency updated in tracker, not in FIFO order
        }
    }
    ASSERT_GT(t.evictions(), 500u);
    EXPECT_LT(t.similarity(), 0.95);
    EXPECT_GT(t.similarity(), 0.2);
}

}  // namespace
}  // namespace p4lru::cache
