#include <gtest/gtest.h>

#include <set>

#include "../test_util.hpp"
#include "p4lru/cache/policy.hpp"

namespace p4lru::cache {
namespace {

using K = std::uint32_t;
using V = std::uint64_t;
using P4 = P4lru4ArrayPolicy<K, V>;

TEST(P4lru4Policy, BasicAccessAndFill) {
    P4 p(64, 1, "P4LRU4");
    const auto miss = p.access(5, 50, 0);
    EXPECT_FALSE(miss.hit);
    EXPECT_TRUE(miss.inserted);
    // Read-path hit keeps the stored value.
    const auto hit = p.access(5, 999, 1);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.value, 50u);
    // Write-path hit replaces.
    p.fill(5, 999, 2);
    EXPECT_EQ(p.peek(5), std::optional<V>(999));
    EXPECT_EQ(p.name(), "P4LRU4");
}

TEST(P4lru4Policy, CapacityNormalization) {
    EXPECT_EQ(P4(64, 1, "P4LRU4").capacity_entries(), 64u);
    EXPECT_EQ(P4(66, 1, "P4LRU4").capacity_entries(), 64u);  // 16 units x 4
}

TEST(P4lru4Policy, ForEachEnumeratesResidentEntries) {
    P4 p(64, 1, "P4LRU4");
    for (K k = 1; k <= 10; ++k) p.access(k, k * 3, k);
    std::set<K> seen;
    p.for_each([&](const K& k, const V& v) {
        EXPECT_EQ(v, k * 3ull);
        EXPECT_TRUE(seen.insert(k).second);
    });
    EXPECT_GE(seen.size(), 5u);
    for (const K k : seen) EXPECT_TRUE(p.peek(k).has_value());
}

TEST(P4lru4Policy, BucketLruEviction) {
    P4 p(4, 1, "P4LRU4");  // exactly one unit of 4
    for (K k = 1; k <= 4; ++k) p.access(k, k, 0);
    p.access(1, 1, 0);  // promote 1 -> LRU order: 1 4 3 2
    const auto a = p.fill(9, 9, 0);
    EXPECT_TRUE(a.evicted);
    EXPECT_EQ(a.evicted_key, 2u);
}

// Deeper buckets at equal memory: 4-entry units should not lose to 3-entry
// units on a recency-friendly stream.
TEST(P4lru4Policy, AtLeastAsGoodAsP4lru3AtEqualMemory) {
    const auto keys = testutil::random_keys(60'000, 3000, 5, 0.35);
    const auto run = [&](ReplacementPolicy<K, V>& p) {
        std::size_t hits = 0;
        for (const auto k : keys) hits += p.access(k, k, 0).hit ? 1 : 0;
        return static_cast<double>(hits) / keys.size();
    };
    P4lruArrayPolicy<K, V, 3> p3(1200, 3);
    P4 p4(1200, 3, "P4LRU4");
    EXPECT_GE(run(p4), run(p3) - 0.005);
}

}  // namespace
}  // namespace p4lru::cache
