#include "p4lru/cache/policy.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "../test_util.hpp"

namespace p4lru::cache {
namespace {

using K = std::uint32_t;
using V = std::uint64_t;
using PolicyPtr = std::unique_ptr<ReplacementPolicy<K, V>>;

/// All policies at 64 entries for the shared behavioural checks.
std::vector<PolicyPtr> make_policies() {
    std::vector<PolicyPtr> out;
    out.push_back(std::make_unique<P4lruArrayPolicy<K, V, 1>>(64, 1));
    out.push_back(std::make_unique<P4lruArrayPolicy<K, V, 2>>(64, 1));
    out.push_back(std::make_unique<P4lruArrayPolicy<K, V, 3>>(64, 1));
    out.push_back(
        std::make_unique<TimeoutPolicy<K, V>>(64, 1, TimeNs{1000}));
    out.push_back(std::make_unique<ElasticPolicy<K, V>>(64, 1));
    out.push_back(std::make_unique<CocoPolicy<K, V>>(64, 1));
    out.push_back(std::make_unique<IdealLruPolicy<K, V>>(64));
    out.push_back(std::make_unique<LfuPolicy<K, V>>(64, 1));
    out.push_back(std::make_unique<ClockPolicy<K, V>>(64));
    return out;
}

TEST(Policies, FreshInsertThenPeek) {
    for (const auto& p : make_policies()) {
        const auto a = p->access(5, 55, 0);
        EXPECT_FALSE(a.hit) << p->name();
        EXPECT_TRUE(a.inserted) << p->name();
        EXPECT_EQ(p->peek(5), std::optional<V>(55)) << p->name();
    }
}

TEST(Policies, ReadPathHitKeepsStoredValue) {
    for (const auto& p : make_policies()) {
        p->access(5, 55, 0);
        const auto a = p->access(5, 999, 1);
        EXPECT_TRUE(a.hit) << p->name();
        EXPECT_EQ(a.value, 55u) << p->name();
        EXPECT_EQ(p->peek(5), std::optional<V>(55)) << p->name();
    }
}

TEST(Policies, WritePathHitReplacesByDefault) {
    for (const auto& p : make_policies()) {
        p->access(5, 55, 0);
        const auto a = p->fill(5, 999, 1);
        EXPECT_TRUE(a.hit) << p->name();
        EXPECT_EQ(p->peek(5), std::optional<V>(999)) << p->name();
    }
}

TEST(Policies, ForEachEnumeratesExactlyTheCachedEntries) {
    for (const auto& p : make_policies()) {
        for (K k = 1; k <= 10; ++k) p->access(k, k * 10, k);
        std::set<K> seen;
        p->for_each([&](const K& k, const V& v) {
            EXPECT_EQ(v, k * 10ull) << p->name();
            EXPECT_TRUE(seen.insert(k).second) << p->name();
        });
        for (const K k : seen) {
            EXPECT_TRUE(p->peek(k).has_value()) << p->name();
        }
        EXPECT_GE(seen.size(), 1u) << p->name();
    }
}

TEST(Policies, CapacityEntriesNormalization) {
    EXPECT_EQ((P4lruArrayPolicy<K, V, 3>(66, 1).capacity_entries()), 66u);
    EXPECT_EQ((P4lruArrayPolicy<K, V, 2>(64, 1).capacity_entries()), 64u);
    EXPECT_EQ((P4lruArrayPolicy<K, V, 1>(64, 1).capacity_entries()), 64u);
    EXPECT_EQ((TimeoutPolicy<K, V>(64, 1, 10).capacity_entries()), 64u);
    EXPECT_EQ((IdealLruPolicy<K, V>(64).capacity_entries()), 64u);
}

TEST(TimeoutPolicy, RetainsOccupantUntilExpiry) {
    // Two keys forced into the same bucket: a 1-entry table.
    TimeoutPolicy<K, V> p(1, 1, TimeNs{100});
    p.access(1, 10, 0);
    const auto blocked = p.access(2, 20, 50);  // not expired
    EXPECT_FALSE(blocked.hit);
    EXPECT_FALSE(blocked.inserted);
    EXPECT_EQ(p.peek(1), std::optional<V>(10));
    const auto replaced = p.access(2, 20, 200);  // expired
    EXPECT_TRUE(replaced.inserted);
    EXPECT_TRUE(replaced.evicted);
    EXPECT_EQ(replaced.evicted_key, 1u);
    EXPECT_FALSE(p.peek(1).has_value());
}

TEST(TimeoutPolicy, HitRefreshesTimestamp) {
    TimeoutPolicy<K, V> p(1, 1, TimeNs{100});
    p.access(1, 10, 0);
    p.access(1, 10, 90);                        // refresh at t=90
    const auto blocked = p.access(2, 20, 150);  // only 60 since refresh
    EXPECT_FALSE(blocked.inserted);
    EXPECT_TRUE(p.access(2, 20, 191).inserted);  // 101 since refresh
}

TEST(ElasticPolicy, EvictsAfterLambdaVotes) {
    ElasticPolicy<K, V> p(1, 1, /*lambda=*/4);
    p.access(1, 10, 0);      // resident, positive = 1
    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(p.access(2, 20, 0).inserted);  // negative 1..3
    }
    EXPECT_TRUE(p.access(2, 20, 0).inserted);  // negative = 4 >= 4*1
    EXPECT_EQ(p.peek(2), std::optional<V>(20));
}

TEST(ElasticPolicy, FrequentResidentIsHardToOust) {
    ElasticPolicy<K, V> p(1, 1, 4);
    for (int i = 0; i < 10; ++i) p.access(1, 10, 0);  // positive = 10
    for (int i = 0; i < 39; ++i) {
        EXPECT_FALSE(p.access(2, 20, 0).inserted) << i;
    }
    EXPECT_TRUE(p.access(2, 20, 0).inserted);  // 40 >= 4*10
}

TEST(CocoPolicy, ReplacementProbabilityDecaysWithCount) {
    // Statistics over many independent buckets: after the resident has
    // count c, a challenger wins with probability ~1/(c+1).
    std::size_t wins = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        CocoPolicy<K, V> p(1, static_cast<std::uint32_t>(t));
        for (int i = 0; i < 9; ++i) p.access(1, 10, 0);  // count = 9
        if (p.access(2, 20, 0).inserted) ++wins;
    }
    const double rate = static_cast<double>(wins) / trials;
    EXPECT_NEAR(rate, 0.1, 0.03);  // 1/(9+1)
}

TEST(IdealLruPolicy, EvictsExactlyTheLeastRecent) {
    IdealLruPolicy<K, V> p(3);
    p.access(1, 1, 0);
    p.access(2, 2, 0);
    p.access(3, 3, 0);
    p.access(1, 1, 0);  // order: 1 3 2
    const auto a = p.access(4, 4, 0);
    EXPECT_TRUE(a.evicted);
    EXPECT_EQ(a.evicted_key, 2u);
}

TEST(LfuPolicy, FrequencyShieldsResident) {
    LfuPolicy<K, V> p(1, 1);
    for (int i = 0; i < 5; ++i) p.access(1, 10, 0);  // freq = 5
    for (int i = 0; i < 4; ++i) {
        EXPECT_FALSE(p.access(2, 20, 0).inserted);
    }
    EXPECT_TRUE(p.access(2, 20, 0).inserted);  // freq decayed to 0
}

TEST(ClockPolicy, SecondChanceProtectsReferencedEntries) {
    ClockPolicy<K, V> p(2);
    p.access(1, 10, 0);
    p.access(2, 20, 0);
    p.access(1, 10, 0);  // re-reference 1
    const auto a = p.access(3, 30, 0);
    EXPECT_TRUE(a.evicted);
    // Entry 1 was referenced, so the hand clears it and takes 2 instead.
    EXPECT_EQ(a.evicted_key, 2u);
    EXPECT_TRUE(p.peek(1).has_value());
}

TEST(Policies, P4lru3ArrayEvictsWithinBucketLru) {
    P4lruArrayPolicy<K, V, 3> p(3, 1);  // exactly 1 unit
    p.access(1, 1, 0);
    p.access(2, 2, 0);
    p.access(3, 3, 0);
    p.access(1, 1, 0);
    const auto a = p.fill(4, 4, 0);
    EXPECT_TRUE(a.evicted);
    EXPECT_EQ(a.evicted_key, 2u);
}

// Hit-rate ordering on a bursty skewed stream at equal memory: ideal LRU >=
// P4LRU3 >= P4LRU1. (P4LRU2/3 bucket locality always beats single-entry
// buckets; ideal is the upper bound.)
TEST(Policies, HitRateOrderingOnBurstyStream) {
    const auto keys = testutil::random_keys(60'000, 3000, 5, 0.35);
    const auto run = [&](ReplacementPolicy<K, V>& p) {
        std::size_t hits = 0;
        TimeNs now = 0;
        for (const auto k : keys) {
            hits += p.access(k, k, now).hit ? 1 : 0;
            now += 100;
        }
        return static_cast<double>(hits) / keys.size();
    };
    P4lruArrayPolicy<K, V, 1> p1(1024, 3);
    P4lruArrayPolicy<K, V, 3> p3(1024, 3);
    IdealLruPolicy<K, V> ideal(1024);
    const double h1 = run(p1);
    const double h3 = run(p3);
    const double hi = run(ideal);
    EXPECT_GT(h3, h1);
    EXPECT_GE(hi, h3 - 0.01);
}

}  // namespace
}  // namespace p4lru::cache
