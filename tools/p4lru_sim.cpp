// p4lru_sim — command-line driver for the whole library.
//
//   p4lru_sim gen-trace  --packets N --segments N --seed S --out t.trc
//   p4lru_sim stats      --trace t.trc
//   p4lru_sim lrutable   [--trace t.trc] --policy p4lru3 --entries N
//                        --dt-us N [--packets N --segments N --seed S]
//   p4lru_sim lrumon     [--trace t.trc] --policy p4lru3 --entries N
//                        --threshold B --reset-ms N --filter tower|cm|cu
//   p4lru_sim lruindex   --items N --queries N --threads N --levels N
//                        --units N [--alpha A]
//   p4lru_sim resources  (Table-2 style report for all three systems)
//   p4lru_sim p4gen      --program lru2|lru3|tower [--units N]
//
// Policies: p4lru1 p4lru2 p4lru3 p4lru4 timeout elastic coco ideal lfu clock
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "p4lru/cache/policy.hpp"
#include "p4lru/pipeline/p4lru2_program.hpp"
#include "p4lru/pipeline/p4lru3_program.hpp"
#include "p4lru/pipeline/system_resources.hpp"
#include "p4lru/pipeline/tower_program.hpp"
#include "p4lru/systems/lrutable/lrutable.hpp"
#include "p4lru/systems/lruindex/db_server.hpp"
#include "p4lru/systems/lruindex/driver.hpp"
#include "p4lru/systems/lruindex/index_cache.hpp"
#include "p4lru/systems/lrumon/lrumon.hpp"
#include "p4lru/trace/trace_gen.hpp"
#include "p4lru/trace/trace_io.hpp"

namespace {

using namespace p4lru;

/// Tiny --key value flag parser.
class Flags {
  public:
    Flags(int argc, char** argv, int start) {
        for (int i = start; i + 1 < argc; i += 2) {
            if (std::strncmp(argv[i], "--", 2) != 0) {
                throw std::invalid_argument(std::string("expected flag, got ") +
                                            argv[i]);
            }
            values_[argv[i] + 2] = argv[i + 1];
        }
    }

    [[nodiscard]] std::string str(const std::string& key,
                                  const std::string& fallback) const {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }
    [[nodiscard]] std::uint64_t num(const std::string& key,
                                    std::uint64_t fallback) const {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : std::strtoull(it->second.c_str(),
                                                   nullptr, 10);
    }
    [[nodiscard]] double real(const std::string& key,
                              double fallback) const {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : std::atof(it->second.c_str());
    }

  private:
    std::map<std::string, std::string> values_;
};

std::vector<PacketRecord> load_or_generate(const Flags& f) {
    const auto path = f.str("trace", "");
    if (!path.empty()) return trace::read_trace(path);
    trace::TraceConfig cfg;
    cfg.total_packets = f.num("packets", 1'000'000);
    cfg.segments = f.num("segments", 30);
    cfg.seed = f.num("seed", 1);
    return trace::generate_trace(cfg);
}

template <typename Key, typename Value, typename Merge>
std::unique_ptr<cache::ReplacementPolicy<Key, Value>> make_policy(
    const std::string& name, std::size_t entries, const Flags& f) {
    const std::uint32_t seed = static_cast<std::uint32_t>(f.num("seed", 1));
    if (name == "p4lru1") {
        return std::make_unique<cache::P4lruArrayPolicy<Key, Value, 1, Merge>>(
            entries, seed);
    }
    if (name == "p4lru2") {
        return std::make_unique<cache::P4lruArrayPolicy<Key, Value, 2, Merge>>(
            entries, seed);
    }
    if (name == "p4lru3") {
        return std::make_unique<cache::P4lruArrayPolicy<Key, Value, 3, Merge>>(
            entries, seed);
    }
    if (name == "p4lru4") {
        return std::make_unique<cache::P4lru4ArrayPolicy<Key, Value, Merge>>(
            entries, seed, "P4LRU4");
    }
    if (name == "timeout") {
        return std::make_unique<cache::TimeoutPolicy<Key, Value, Merge>>(
            entries, seed, f.num("timeout-ms", 100) * kMillisecond);
    }
    if (name == "elastic") {
        return std::make_unique<cache::ElasticPolicy<Key, Value, Merge>>(
            entries, seed);
    }
    if (name == "coco") {
        return std::make_unique<cache::CocoPolicy<Key, Value, Merge>>(entries,
                                                                      seed);
    }
    if (name == "ideal") {
        return std::make_unique<cache::IdealLruPolicy<Key, Value, Merge>>(
            entries);
    }
    if (name == "lfu") {
        return std::make_unique<cache::LfuPolicy<Key, Value, Merge>>(entries,
                                                                     seed);
    }
    if (name == "clock") {
        return std::make_unique<cache::ClockPolicy<Key, Value, Merge>>(
            entries);
    }
    throw std::invalid_argument("unknown policy: " + name);
}

int cmd_gen_trace(const Flags& f) {
    const auto trace = load_or_generate(f);
    const auto out = f.str("out", "");
    if (!out.empty()) {
        trace::write_trace(out, trace);
        std::printf("wrote %zu packets to %s\n", trace.size(), out.c_str());
    }
    const auto s = trace::compute_stats(trace);
    std::printf("packets %zu  flows %zu  max-concurrent %zu  bytes %lu  "
                "duration %.3f s\n",
                s.packets, s.flows, s.max_concurrent, s.total_bytes,
                static_cast<double>(s.duration) / 1e9);
    return 0;
}

int cmd_lrutable(const Flags& f) {
    const auto trace = load_or_generate(f);
    systems::lrutable::LruTableConfig cfg;
    cfg.slow_path_delay = f.num("dt-us", 40) * kMicrosecond;
    auto policy =
        make_policy<systems::lrutable::VirtualAddress, std::uint32_t,
                    core::ReplaceMerge>(f.str("policy", "p4lru3"),
                                        f.num("entries", 12'288), f);
    const std::string name = policy->name();
    systems::lrutable::LruTableSystem sys(std::move(policy), cfg);
    for (const auto& p : trace) sys.process(p);
    sys.finish();
    const auto r = sys.report();
    std::printf("policy %-9s packets %lu fast %lu placeholder %lu miss %lu\n"
                "miss rate %.3f%%  avg added latency %.3f us\n",
                name.c_str(), r.packets, r.fast_path, r.placeholder_hits,
                r.misses, 100.0 * r.miss_rate, r.avg_added_latency_us);
    return 0;
}

int cmd_lrumon(const Flags& f) {
    const auto trace = load_or_generate(f);
    systems::lrumon::FilterConfig fcfg;
    fcfg.reset_period = f.num("reset-ms", 10) * kMillisecond;
    const auto kind_name = f.str("filter", "tower");
    systems::lrumon::FilterKind kind = systems::lrumon::FilterKind::kTower;
    if (kind_name == "cm") kind = systems::lrumon::FilterKind::kCm;
    else if (kind_name == "cu") kind = systems::lrumon::FilterKind::kCu;
    else if (kind_name != "tower") {
        throw std::invalid_argument("unknown filter: " + kind_name);
    }
    systems::lrumon::LruMonConfig cfg;
    cfg.threshold = static_cast<std::uint32_t>(f.num("threshold", 1500));
    auto policy = make_policy<std::uint32_t, systems::lrumon::FlowLen,
                              core::AddMerge>(f.str("policy", "p4lru3"),
                                              f.num("entries", 768), f);
    const std::string name = policy->name();
    systems::lrumon::LruMonSystem sys(
        systems::lrumon::make_filter(kind, fcfg), std::move(policy), cfg);
    for (const auto& p : trace) sys.process(p);
    sys.finish();
    const auto r = sys.report();
    std::printf(
        "policy %-9s filter %-5s  elephants %lu (miss %.2f%%)  uploads %lu "
        "(%.1f KPPS)\n"
        "total error %.3f%%  max flow error %lu B  overestimated %lu\n",
        name.c_str(), kind_name.c_str(), r.elephant_packets,
        100.0 * r.cache_miss_rate, r.uploads, r.upload_kpps,
        100.0 * r.total_error_rate, r.max_flow_error, r.overestimated_flows);
    return 0;
}

int cmd_lruindex(const Flags& f) {
    systems::lruindex::DbServer server(f.num("items", 200'000),
                                       systems::lruindex::ServerCosts{});
    systems::lruindex::SeriesIndexCache cache(
        f.num("levels", 4), f.num("units", 4096),
        static_cast<std::uint32_t>(f.num("seed", 0x1D)));
    systems::lruindex::DriverConfig cfg;
    cfg.threads = f.num("threads", 8);
    cfg.queries = f.num("queries", 100'000);
    cfg.workload.items = server.items();
    cfg.workload.zipf_alpha = f.real("alpha", 0.9);
    const auto with = run_driver(cfg, server, &cache);
    auto naive_cfg = cfg;
    naive_cfg.use_cache = false;
    const auto naive = run_driver(naive_cfg, server, nullptr);
    std::printf(
        "cached %.1f KTPS (miss %.2f%%, latency %.1f us)  naive %.1f KTPS\n"
        "speedup %.3fx  wrong replies %lu\n",
        with.throughput_ktps, 100.0 * with.miss_rate, with.avg_latency_us,
        naive.throughput_ktps, with.throughput_ktps / naive.throughput_ktps,
        with.wrong_replies);
    return 0;
}

int cmd_resources() {
    const auto table = pipeline::lrutable_resources();
    const auto index = pipeline::lruindex_resources();
    const auto mon = pipeline::lrumon_resources();
    std::printf("== LruTable ==\n%s\n== LruIndex ==\n%s\n== LruMon ==\n%s",
                table.to_table().c_str(), index.to_table().c_str(),
                mon.to_table().c_str());
    return 0;
}

int cmd_p4gen(const Flags& f) {
    const auto program = f.str("program", "lru3");
    const auto units = f.num("units", 1u << 16);
    if (program == "lru3") {
        pipeline::P4lru3PipelineCache cache(units, 0xAB,
                                            pipeline::ValueMode::kReadCache);
        std::printf("%s", cache.pipeline().export_p4("p4lru3_cache").c_str());
    } else if (program == "lru2") {
        pipeline::P4lru2PipelineCache cache(units, 0xAB,
                                            pipeline::ValueMode::kReadCache);
        std::printf("%s", cache.pipeline().export_p4("p4lru2_cache").c_str());
    } else if (program == "tower") {
        pipeline::TowerPipelineFilter tower(
            pipeline::TowerPipelineFilter::Config{});
        std::printf("%s", tower.pipeline().export_p4("tower_filter").c_str());
    } else {
        throw std::invalid_argument("unknown program: " + program);
    }
    return 0;
}

int usage() {
    std::fprintf(
        stderr,
        "usage: p4lru_sim <gen-trace|stats|lrutable|lrumon|lruindex|"
        "resources|p4gen> [--flag value ...]\n"
        "see the header of tools/p4lru_sim.cpp for the full flag list\n");
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    try {
        const Flags flags(argc, argv, 2);
        if (cmd == "gen-trace" || cmd == "stats") return cmd_gen_trace(flags);
        if (cmd == "lrutable") return cmd_lrutable(flags);
        if (cmd == "lrumon") return cmd_lrumon(flags);
        if (cmd == "lruindex") return cmd_lruindex(flags);
        if (cmd == "resources") return cmd_resources();
        if (cmd == "p4gen") return cmd_p4gen(flags);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
