// p4lru_ckpt — offline inspector for the durable checkpoint formats
// (DESIGN.md §12).  Works on both on-disk layouts (P4LRUCKP cache
// checkpoints and P4LRUTGC target checkpoints) from the header alone — no
// Stats type needed — so it can judge any file the replay stack writes.
//
//   p4lru_ckpt describe <file.ckpt>       header fields + per-section CRCs
//   p4lru_ckpt verify <file.ckpt>...      structural + CRC verdict per file
//   p4lru_ckpt list-generations <dir>     generations of a DurableStore
//
// Exit status: 0 when every inspected file verifies (for list-generations:
// when at least one generation is recoverable), 1 otherwise, 2 on usage
// errors.  `verify` prints one line per file so CI logs name the culprit.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "p4lru/replay/durable_store.hpp"

namespace {

using namespace p4lru;
using replay::DurableStore;
using replay::ImageInfo;

int usage() {
    std::fprintf(stderr,
                 "usage: p4lru_ckpt describe <file.ckpt>\n"
                 "       p4lru_ckpt verify <file.ckpt>...\n"
                 "       p4lru_ckpt list-generations <store-dir>\n");
    return 2;
}

int cmd_describe(const std::string& path) {
    const auto bytes = replay::read_file_bytes(path);
    if (!bytes.is_ok()) {
        std::fprintf(stderr, "p4lru_ckpt: %s\n",
                     bytes.status().to_string().c_str());
        return 1;
    }
    const auto info = replay::describe_checkpoint_image(bytes.value(), path);
    if (!info.is_ok()) {
        std::fprintf(stderr, "p4lru_ckpt: %s\n",
                     info.status().to_string().c_str());
        return 1;
    }
    const ImageInfo& i = info.value();
    std::printf("file:          %s\n", path.c_str());
    std::printf("format:        %s (version %u%s)\n", i.format.c_str(),
                i.version, i.sealed ? ", CRC-sealed" : ", legacy unsealed");
    std::printf("state id:      %u\n", i.id);
    std::printf("fingerprint:   0x%016llx\n",
                static_cast<unsigned long long>(i.fingerprint));
    std::printf("units:         %llu\n",
                static_cast<unsigned long long>(i.unit_count));
    std::printf("cursor:        %llu ops\n",
                static_cast<unsigned long long>(i.cursor));
    std::printf("shards:        %llu (%llu bytes per stats record)\n",
                static_cast<unsigned long long>(i.shard_count),
                static_cast<unsigned long long>(i.record_bytes));
    std::printf("payload:       %llu bytes of state (%llu byte file)\n",
                static_cast<unsigned long long>(i.payload_bytes),
                static_cast<unsigned long long>(i.file_bytes));
    for (const auto& s : i.sections) {
        std::printf("  section %-8s [%8llu, %8llu)  crc stored %08x "
                    "computed %08x  %s\n",
                    s.name.c_str(), static_cast<unsigned long long>(s.begin),
                    static_cast<unsigned long long>(s.end), s.stored,
                    s.computed, s.ok ? "ok" : "MISMATCH");
    }
    std::printf("verdict:       %s\n", i.verdict.is_ok()
                                           ? "ok"
                                           : i.verdict.to_string().c_str());
    return i.verdict.is_ok() ? 0 : 1;
}

int cmd_verify(const std::vector<std::string>& paths) {
    int rc = 0;
    for (const auto& path : paths) {
        const auto bytes = replay::read_file_bytes(path);
        if (!bytes.is_ok()) {
            std::printf("%s: %s\n", path.c_str(),
                        bytes.status().to_string().c_str());
            rc = 1;
            continue;
        }
        const auto st = replay::verify_checkpoint_image(bytes.value(), path);
        std::printf("%s: %s\n", path.c_str(),
                    st.is_ok() ? "ok" : st.to_string().c_str());
        if (!st.is_ok()) rc = 1;
    }
    return rc;
}

int cmd_list_generations(const std::string& dir) {
    const DurableStore store(dir);
    const auto gens = store.list();
    if (gens.empty()) {
        std::printf("%s: no generations\n", dir.c_str());
        return 1;
    }
    std::size_t valid = 0;
    for (const auto& g : gens) {
        const auto bytes = replay::read_file_bytes(g.path);
        std::string verdict;
        if (!bytes.is_ok()) {
            verdict = bytes.status().to_string();
        } else {
            const auto st =
                replay::verify_checkpoint_image(bytes.value(), g.path);
            verdict = st.is_ok() ? "ok" : st.to_string();
            if (st.is_ok()) ++valid;
        }
        std::printf("gen %6llu  %10llu bytes  %s  %s\n",
                    static_cast<unsigned long long>(g.seq),
                    static_cast<unsigned long long>(
                        bytes.is_ok() ? bytes.value().size() : 0),
                    verdict.c_str(), g.path.c_str());
    }
    std::printf("%zu generation(s), %zu recoverable\n", gens.size(), valid);
    return valid > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) return usage();
    const std::string cmd = argv[1];
    if (cmd == "describe") {
        if (argc != 3) return usage();
        return cmd_describe(argv[2]);
    }
    if (cmd == "verify") {
        std::vector<std::string> paths(argv + 2, argv + argc);
        return cmd_verify(paths);
    }
    if (cmd == "list-generations") {
        if (argc != 3) return usage();
        return cmd_list_generations(argv[2]);
    }
    return usage();
}
