// p4lru_metrics — offline reader for the sampler's JSONL metric logs
// (DESIGN.md §13).  One parser (obs::parse_snapshot_json) shared with the
// library, so a file this tool accepts is exactly a file the sampler wrote
// whole.
//
//   p4lru_metrics print <file.jsonl>            pretty-print the last
//                                               snapshot (tail of the run)
//   p4lru_metrics tail <file.jsonl> [n]         last n snapshots, compact
//   p4lru_metrics verify <file.jsonl>...        every line must parse; one
//                                               verdict line per file
//   p4lru_metrics check <file.jsonl> k=v...     last snapshot's counters
//                                               must equal the given values
//   p4lru_metrics prom <file.jsonl>             last snapshot re-rendered
//                                               in Prometheus text format
//
// Exit status: 0 on success, 1 when a file is damaged or a check fails,
// 2 on usage errors.  A torn tail line (crash while appending) counts as
// damage for `verify` but is tolerated by `print`/`tail`/`check`, which
// read the newest *parseable* record — matching how an operator uses the
// log after a crash.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "p4lru/obs/exposition.hpp"
#include "p4lru/obs/metrics.hpp"

namespace {

using namespace p4lru;

int usage() {
    std::fprintf(stderr,
                 "usage: p4lru_metrics print <file.jsonl>\n"
                 "       p4lru_metrics tail <file.jsonl> [n]\n"
                 "       p4lru_metrics verify <file.jsonl>...\n"
                 "       p4lru_metrics check <file.jsonl> name=value...\n"
                 "       p4lru_metrics prom <file.jsonl>\n");
    return 2;
}

/// Split a file into lines (empty lines dropped; no trailing-newline
/// requirement, so a torn tail shows up as one unparseable line).
bool read_lines(const std::string& path, std::vector<std::string>& out) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        std::fprintf(stderr, "p4lru_metrics: cannot open %s\n", path.c_str());
        return false;
    }
    std::string text;
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        text.append(buf, n);
    }
    std::fclose(f);
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t nl = text.find('\n', start);
        const std::size_t end = nl == std::string::npos ? text.size() : nl;
        if (end > start) out.push_back(text.substr(start, end - start));
        if (nl == std::string::npos) break;
        start = nl + 1;
    }
    return true;
}

/// The newest line that parses; nullopt-style via bool.
bool last_snapshot(const std::vector<std::string>& lines,
                   obs::Snapshot& out) {
    for (auto it = lines.rbegin(); it != lines.rend(); ++it) {
        const auto parsed = obs::parse_snapshot_json(*it);
        if (parsed.is_ok()) {
            out = parsed.value();
            return true;
        }
    }
    return false;
}

void print_snapshot(const obs::Snapshot& s, bool compact) {
    if (compact) {
        std::printf("seq=%" PRIu64 " unix_us=%" PRIu64, s.seq, s.unix_us);
        for (const auto& [name, v] : s.counters) {
            std::printf(" %s=%" PRIu64, name.c_str(), v);
        }
        for (const auto& [name, v] : s.gauges) {
            std::printf(" %s=%" PRId64, name.c_str(), v);
        }
        std::printf("\n");
        return;
    }
    std::printf("snapshot seq %" PRIu64 "  (unix_us %" PRIu64 ")\n", s.seq,
                s.unix_us);
    if (!s.counters.empty()) {
        std::printf("counters:\n");
        for (const auto& [name, v] : s.counters) {
            std::printf("  %-36s %12" PRIu64 "\n", name.c_str(), v);
        }
    }
    if (!s.gauges.empty()) {
        std::printf("gauges:\n");
        for (const auto& [name, v] : s.gauges) {
            std::printf("  %-36s %12" PRId64 "\n", name.c_str(), v);
        }
    }
    if (!s.histograms.empty()) {
        std::printf("histograms:\n");
        for (const auto& [name, h] : s.histograms) {
            std::printf("  %-36s count %-10" PRIu64 " sum %-14" PRIu64
                        " mean %.1f\n",
                        name.c_str(), h.count, h.sum, h.mean());
            // The occupied log2 band, one row per nonzero bucket.
            for (std::size_t b = 0; b < obs::kHistBuckets; ++b) {
                if (h.buckets[b] == 0) continue;
                if (b + 1 == obs::kHistBuckets) {
                    std::printf("    le +Inf%-22s %10" PRIu64 "\n", "",
                                h.buckets[b]);
                } else {
                    std::printf("    le %-26" PRIu64 " %10" PRIu64 "\n",
                                obs::bucket_upper_bound(b), h.buckets[b]);
                }
            }
        }
    }
}

int cmd_print(const std::string& path) {
    std::vector<std::string> lines;
    if (!read_lines(path, lines)) return 1;
    obs::Snapshot snap;
    if (!last_snapshot(lines, snap)) {
        std::fprintf(stderr, "p4lru_metrics: no parseable snapshot in %s\n",
                     path.c_str());
        return 1;
    }
    print_snapshot(snap, /*compact=*/false);
    return 0;
}

int cmd_tail(const std::string& path, std::size_t count) {
    std::vector<std::string> lines;
    if (!read_lines(path, lines)) return 1;
    std::vector<obs::Snapshot> snaps;
    for (const auto& line : lines) {
        const auto parsed = obs::parse_snapshot_json(line);
        if (parsed.is_ok()) snaps.push_back(parsed.value());
    }
    if (snaps.empty()) {
        std::fprintf(stderr, "p4lru_metrics: no parseable snapshot in %s\n",
                     path.c_str());
        return 1;
    }
    const std::size_t first =
        snaps.size() > count ? snaps.size() - count : 0;
    for (std::size_t i = first; i < snaps.size(); ++i) {
        print_snapshot(snaps[i], /*compact=*/true);
    }
    return 0;
}

int cmd_verify(const std::vector<std::string>& paths) {
    int rc = 0;
    for (const auto& path : paths) {
        std::vector<std::string> lines;
        if (!read_lines(path, lines)) {
            rc = 1;
            continue;
        }
        std::size_t bad = 0;
        std::string first_err;
        for (const auto& line : lines) {
            const auto parsed = obs::parse_snapshot_json(line);
            if (!parsed.is_ok()) {
                if (bad == 0) first_err = parsed.status().to_string();
                ++bad;
            }
        }
        if (bad == 0) {
            std::printf("%-40s ok (%zu snapshots)\n", path.c_str(),
                        lines.size());
        } else {
            std::printf("%-40s DAMAGED (%zu/%zu lines bad: %s)\n",
                        path.c_str(), bad, lines.size(), first_err.c_str());
            rc = 1;
        }
    }
    return rc;
}

int cmd_check(const std::string& path,
              const std::vector<std::string>& expectations) {
    std::vector<std::string> lines;
    if (!read_lines(path, lines)) return 1;
    obs::Snapshot snap;
    if (!last_snapshot(lines, snap)) {
        std::fprintf(stderr, "p4lru_metrics: no parseable snapshot in %s\n",
                     path.c_str());
        return 1;
    }
    int rc = 0;
    for (const auto& e : expectations) {
        const std::size_t eq = e.find('=');
        if (eq == std::string::npos || eq == 0) {
            std::fprintf(stderr, "p4lru_metrics: bad expectation '%s'\n",
                         e.c_str());
            return 2;
        }
        const std::string name = e.substr(0, eq);
        const std::uint64_t want =
            std::strtoull(e.c_str() + eq + 1, nullptr, 10);
        const std::uint64_t* got = snap.counter(name);
        if (got == nullptr) {
            std::printf("%-36s MISSING (want %" PRIu64 ")\n", name.c_str(),
                        want);
            rc = 1;
        } else if (*got != want) {
            std::printf("%-36s MISMATCH (want %" PRIu64 ", got %" PRIu64
                        ")\n",
                        name.c_str(), want, *got);
            rc = 1;
        } else {
            std::printf("%-36s ok (%" PRIu64 ")\n", name.c_str(), want);
        }
    }
    return rc;
}

int cmd_prom(const std::string& path) {
    std::vector<std::string> lines;
    if (!read_lines(path, lines)) return 1;
    obs::Snapshot snap;
    if (!last_snapshot(lines, snap)) {
        std::fprintf(stderr, "p4lru_metrics: no parseable snapshot in %s\n",
                     path.c_str());
        return 1;
    }
    const std::string text = obs::to_prometheus(snap);
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) return usage();
    const std::string cmd = argv[1];
    if (cmd == "print") {
        return cmd_print(argv[2]);
    }
    if (cmd == "tail") {
        std::size_t n = 10;
        if (argc >= 4) n = std::strtoull(argv[3], nullptr, 10);
        return cmd_tail(argv[2], n == 0 ? 1 : n);
    }
    if (cmd == "verify") {
        return cmd_verify({argv + 2, argv + argc});
    }
    if (cmd == "check") {
        if (argc < 4) return usage();
        return cmd_check(argv[2], {argv + 3, argv + argc});
    }
    if (cmd == "prom") {
        return cmd_prom(argv[2]);
    }
    return usage();
}
