// Figure 13 — LruIndex comparative experiment (Section 4.2.1): the same
// query/reply protocol driven over each replacement policy.
//   (a) cache miss rate vs cache memory
//   (b) cache miss rate vs query latency dT of the database server
//
// Every cell drives its own closed-loop simulation against a shared
// read-only DbServer (serve() is const), so cells are evaluated via
// bench::run_series — concurrently on multicore machines — and per-series
// timings (wall time, Mops/s over the query count) print after each table.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "p4lru/systems/lruindex/db_server.hpp"
#include "p4lru/systems/lruindex/driver.hpp"
#include "p4lru/systems/lruindex/index_cache.hpp"

using namespace p4lru;
using namespace p4lru::bench;
using namespace p4lru::systems::lruindex;

namespace {

using Factory = PolicyFactory<DbKey, index::RecordAddress>;

double miss_rate(DbServer& server, std::unique_ptr<IndexCache> cache,
                 std::size_t queries) {
    DriverConfig cfg;
    cfg.threads = 8;
    cfg.queries = queries;
    cfg.workload.items = server.items();
    cfg.workload.zipf_alpha = 0.9;
    cfg.workload.seed = 130;
    const auto r = run_driver(cfg, server, cache.get());
    return r.miss_rate;
}

std::unique_ptr<IndexCache> wrap(Factory::Ptr policy) {
    return std::make_unique<PolicyIndexCache>(std::move(policy));
}

double tuned_timeout_miss(DbServer& server, std::size_t entries,
                          std::size_t queries) {
    double best = 1.0;
    for (const TimeNs t :
         {3 * kMillisecond, 10 * kMillisecond, 30 * kMillisecond,
          100 * kMillisecond}) {
        best = std::min(
            best, miss_rate(server, wrap(Factory::timeout(entries, 0xF1, t)),
                            queries));
    }
    return best;
}

/// The five policy columns of one row. `seed` salts the policy hashes (the
/// original bench used 0xF1 for (a) and 0xF2 for (b)).
std::vector<SeriesJob> row_jobs(DbServer& server, const std::string& label,
                                std::size_t entries, std::size_t queries,
                                std::uint32_t seed) {
    const auto n = static_cast<std::uint64_t>(queries);
    return {
        {label + "/P4LRU3", n,
         [&server, entries, queries, seed] {
             // The paper's LruIndex uses the series connection; 4 levels.
             auto p3 = std::make_unique<SeriesIndexCache>(
                 4, std::max<std::size_t>(1, entries / 12), seed);
             return miss_rate(server, std::move(p3), queries);
         }},
        {label + "/Timeout", 4 * n,
         [&server, entries, queries] {
             return tuned_timeout_miss(server, entries, queries);
         }},
        {label + "/Elastic", n,
         [&server, entries, queries, seed] {
             return miss_rate(server, wrap(Factory::elastic(entries, seed)),
                              queries);
         }},
        {label + "/Coco", n,
         [&server, entries, queries, seed] {
             return miss_rate(server, wrap(Factory::coco(entries, seed)),
                              queries);
         }},
        {label + "/LRU_IDEAL", n,
         [&server, entries, queries] {
             return miss_rate(server, wrap(Factory::ideal(entries)), queries);
         }},
    };
}

}  // namespace

int main() {
    const std::uint64_t items = scaled(200'000);
    const std::size_t queries = scaled(100'000);
    const std::size_t base_entries = scaled(3 * (1u << 12));

    // --- (a) miss rate vs memory ------------------------------------------
    {
        DbServer server(items, ServerCosts{});
        const std::vector<double> mults = {0.5, 1.0, 2.0, 4.0};
        std::vector<SeriesJob> jobs;
        std::vector<std::size_t> row_entries;
        for (const double mult : mults) {
            const auto entries =
                static_cast<std::size_t>(base_entries * mult);
            row_entries.push_back(entries);
            const auto row = row_jobs(server, std::to_string(entries),
                                      entries, queries, 0xF1);
            jobs.insert(jobs.end(), row.begin(), row.end());
        }
        TimingReport timing;
        const auto res = run_series(jobs, &timing);

        ConsoleTable t({"entries", "P4LRU3 %", "Timeout %", "Elastic %",
                        "Coco %", "LRU_IDEAL %"});
        for (std::size_t r = 0; r < mults.size(); ++r) {
            t.add_row({std::to_string(row_entries[r]),
                       pct(res[r * 5 + 0].value), pct(res[r * 5 + 1].value),
                       pct(res[r * 5 + 2].value), pct(res[r * 5 + 3].value),
                       pct(res[r * 5 + 4].value)});
        }
        t.print("Figure 13(a): LruIndex miss rate vs memory");
        timing.print("Figure 13(a): per-series driver timings");
    }

    // --- (b) miss rate vs server query latency dT --------------------------
    {
        const std::vector<TimeNs> hops = {1'000u, 3'000u, 9'000u, 27'000u};
        // One shared server per hop cost, alive for the whole section.
        std::vector<std::unique_ptr<DbServer>> servers;
        for (const TimeNs hop : hops) {
            ServerCosts costs;
            costs.per_index_hop = hop;
            servers.push_back(std::make_unique<DbServer>(items, costs));
        }
        std::vector<SeriesJob> jobs;
        for (std::size_t h = 0; h < hops.size(); ++h) {
            const TimeNs approx_dt =
                hops[h] * 4;  // ~tree height hops per indexed query
            const auto row =
                row_jobs(*servers[h],
                         "dT" + std::to_string(approx_dt / 1000) + "us",
                         base_entries, queries, 0xF2);
            jobs.insert(jobs.end(), row.begin(), row.end());
        }
        TimingReport timing;
        const auto res = run_series(jobs, &timing);

        ConsoleTable t({"dT us (index cost)", "P4LRU3 %", "Timeout %",
                        "Elastic %", "Coco %", "LRU_IDEAL %"});
        for (std::size_t r = 0; r < hops.size(); ++r) {
            t.add_row({std::to_string(hops[r] * 4 / 1000),
                       pct(res[r * 5 + 0].value), pct(res[r * 5 + 1].value),
                       pct(res[r * 5 + 2].value), pct(res[r * 5 + 3].value),
                       pct(res[r * 5 + 4].value)});
        }
        t.print("Figure 13(b): LruIndex miss rate vs query latency");
        timing.print("Figure 13(b): per-series driver timings");
    }

    std::printf(
        "\nPaper shape: Coco > Elastic > Timeout > P4LRU3; P4LRU3 cuts the\n"
        "miss rate by up to 33.3/23.6/10.4%% in (a) and 23.7/19.0/9.8%% in\n"
        "(b). Gains are smaller than LruTable's because YCSB keys have\n"
        "weaker temporal locality.\n");
    return 0;
}
