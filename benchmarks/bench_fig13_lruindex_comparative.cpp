// Figure 13 — LruIndex comparative experiment (Section 4.2.1): the same
// query/reply protocol driven over each replacement policy.
//   (a) cache miss rate vs cache memory
//   (b) cache miss rate vs query latency dT of the database server
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "p4lru/systems/lruindex/db_server.hpp"
#include "p4lru/systems/lruindex/driver.hpp"
#include "p4lru/systems/lruindex/index_cache.hpp"

using namespace p4lru;
using namespace p4lru::bench;
using namespace p4lru::systems::lruindex;

namespace {

using Factory = PolicyFactory<DbKey, index::RecordAddress>;

double miss_rate(DbServer& server, std::unique_ptr<IndexCache> cache,
                 std::size_t queries) {
    DriverConfig cfg;
    cfg.threads = 8;
    cfg.queries = queries;
    cfg.workload.items = server.items();
    cfg.workload.zipf_alpha = 0.9;
    cfg.workload.seed = 130;
    const auto r = run_driver(cfg, server, cache.get());
    return r.miss_rate;
}

std::unique_ptr<IndexCache> wrap(Factory::Ptr policy) {
    return std::make_unique<PolicyIndexCache>(std::move(policy));
}

double tuned_timeout_miss(DbServer& server, std::size_t entries,
                          std::size_t queries) {
    double best = 1.0;
    for (const TimeNs t :
         {3 * kMillisecond, 10 * kMillisecond, 30 * kMillisecond,
          100 * kMillisecond}) {
        best = std::min(
            best, miss_rate(server, wrap(Factory::timeout(entries, 0xF1, t)),
                            queries));
    }
    return best;
}

}  // namespace

int main() {
    const std::uint64_t items = scaled(200'000);
    const std::size_t queries = scaled(100'000);
    const std::size_t base_entries = scaled(3 * (1u << 12));

    // --- (a) miss rate vs memory ------------------------------------------
    {
        DbServer server(items, ServerCosts{});
        ConsoleTable t({"entries", "P4LRU3 %", "Timeout %", "Elastic %",
                        "Coco %", "LRU_IDEAL %"});
        for (const double mult : {0.5, 1.0, 2.0, 4.0}) {
            const auto entries =
                static_cast<std::size_t>(base_entries * mult);
            // The paper's LruIndex uses the series connection; 4 levels.
            auto p3 = std::make_unique<SeriesIndexCache>(
                4, std::max<std::size_t>(1, entries / 12), 0xF1);
            t.add_row(
                {std::to_string(entries),
                 pct(miss_rate(server, std::move(p3), queries)),
                 pct(tuned_timeout_miss(server, entries, queries)),
                 pct(miss_rate(server, wrap(Factory::elastic(entries, 0xF1)),
                               queries)),
                 pct(miss_rate(server, wrap(Factory::coco(entries, 0xF1)),
                               queries)),
                 pct(miss_rate(server, wrap(Factory::ideal(entries)),
                               queries))});
        }
        t.print("Figure 13(a): LruIndex miss rate vs memory");
    }

    // --- (b) miss rate vs server query latency dT --------------------------
    {
        ConsoleTable t({"dT us (index cost)", "P4LRU3 %", "Timeout %",
                        "Elastic %", "Coco %", "LRU_IDEAL %"});
        for (const TimeNs hop : {1'000u, 3'000u, 9'000u, 27'000u}) {
            ServerCosts costs;
            costs.per_index_hop = hop;
            DbServer server(items, costs);
            const TimeNs approx_dt =
                hop * 4;  // ~tree height hops per indexed query
            auto p3 = std::make_unique<SeriesIndexCache>(
                4, std::max<std::size_t>(1, base_entries / 12), 0xF2);
            t.add_row(
                {std::to_string(approx_dt / 1000),
                 pct(miss_rate(server, std::move(p3), queries)),
                 pct(tuned_timeout_miss(server, base_entries, queries)),
                 pct(miss_rate(server,
                               wrap(Factory::elastic(base_entries, 0xF2)),
                               queries)),
                 pct(miss_rate(server,
                               wrap(Factory::coco(base_entries, 0xF2)),
                               queries)),
                 pct(miss_rate(server, wrap(Factory::ideal(base_entries)),
                               queries))});
        }
        t.print("Figure 13(b): LruIndex miss rate vs query latency");
    }

    std::printf(
        "\nPaper shape: Coco > Elastic > Timeout > P4LRU3; P4LRU3 cuts the\n"
        "miss rate by up to 33.3/23.6/10.4%% in (a) and 23.7/19.0/9.8%% in\n"
        "(b). Gains are smaller than LruTable's because YCSB keys have\n"
        "weaker temporal locality.\n");
    return 0;
}
