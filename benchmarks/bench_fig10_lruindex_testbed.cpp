// Figure 10 — LruIndex testbed experiment (YCSB, Zipf alpha = 0.9).
//   (a) query throughput vs number of client threads (1e5-item database)
//   (b) throughput speedup over the Naive (cache-less) solution vs database
//       size, at 8 threads
//   (c) the same query stream through the generic replay engine
//       (LruIndexTarget + run_system_series): sequential reference vs
//       inline and 2/4-worker threaded-sharded, statistics bit-identical,
//       multi-worker series written to BENCH_fig10_lruindex.json.
// Series: P4LRU3 (two-pipeline LruIndex = 2 series levels, as the paper's
// testbed uses) and Baseline (hash-table cache under the same protocol).
// (a)/(b) keep the closed-loop driver: client-thread throughput is a
// latency-model property the open-loop engine intentionally does not model.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "p4lru/systems/lruindex/db_server.hpp"
#include "p4lru/systems/lruindex/driver.hpp"
#include "p4lru/systems/lruindex/index_cache.hpp"
#include "p4lru/systems/lruindex/lruindex_target.hpp"

using namespace p4lru;
using namespace p4lru::bench;
using namespace p4lru::systems::lruindex;

namespace {

DriverConfig driver_config(std::size_t threads, std::uint64_t items,
                           std::size_t queries) {
    DriverConfig cfg;
    cfg.threads = threads;
    cfg.queries = queries;
    cfg.workload.items = items;
    cfg.workload.zipf_alpha = 0.9;
    cfg.workload.seed = 77;
    return cfg;
}

std::unique_ptr<IndexCache> baseline(std::size_t entries) {
    return std::make_unique<PolicyIndexCache>(
        std::make_unique<cache::P4lruArrayPolicy<DbKey, index::RecordAddress,
                                                 1>>(entries, 0xB0));
}

}  // namespace

int main() {
    const std::size_t units = scaled(1u << 13);
    const std::size_t queries = scaled(120'000);

    // --- (a) throughput vs #threads, fixed database ---------------------
    {
        const std::uint64_t items = scaled(100'000);
        DbServer server(items, ServerCosts{});
        ConsoleTable t({"threads", "P4LRU3 KTPS", "Baseline KTPS",
                        "Naive KTPS", "P4LRU3/Baseline"});
        for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
            SeriesIndexCache p3(2, units, 0xC1);
            auto p1 = baseline(2 * units * 3);
            const auto cfg = driver_config(threads, items, queries / 2);
            const auto r3 = run_driver(cfg, server, &p3);
            const auto r1 = run_driver(cfg, server, p1.get());
            auto naive_cfg = cfg;
            naive_cfg.use_cache = false;
            const auto rn = run_driver(naive_cfg, server, nullptr);
            t.add_row({std::to_string(threads),
                       ConsoleTable::num(r3.throughput_ktps, 1),
                       ConsoleTable::num(r1.throughput_ktps, 1),
                       ConsoleTable::num(rn.throughput_ktps, 1),
                       ConsoleTable::num(
                           r3.throughput_ktps / r1.throughput_ktps, 3)});
        }
        t.print("Figure 10(a): LruIndex throughput vs #threads");
    }

    // --- (b) speedup over naive vs #items, 8 threads ---------------------
    {
        ConsoleTable t({"items", "P4LRU3 speedup", "Baseline speedup",
                        "P4LRU3 miss %", "Baseline miss %"});
        for (const std::uint64_t items :
             {scaled(50'000), scaled(100'000), scaled(200'000),
              scaled(400'000)}) {
            DbServer server(items, ServerCosts{});
            SeriesIndexCache p3(2, units, 0xC2);
            auto p1 = baseline(2 * units * 3);
            const auto cfg = driver_config(8, items, queries / 2);
            const auto r3 = run_driver(cfg, server, &p3);
            const auto r1 = run_driver(cfg, server, p1.get());
            auto naive_cfg = cfg;
            naive_cfg.use_cache = false;
            const auto rn = run_driver(naive_cfg, server, nullptr);
            t.add_row({std::to_string(items),
                       ConsoleTable::num(
                           r3.throughput_ktps / rn.throughput_ktps, 3),
                       ConsoleTable::num(
                           r1.throughput_ktps / rn.throughput_ktps, 3),
                       pct(r3.miss_rate), pct(r1.miss_rate)});
        }
        t.print("Figure 10(b): LruIndex speedup over Naive vs #items");
    }

    // --- (c) engine-mode axis over the same query stream ------------------
    bool all_match = true;
    {
        const std::uint64_t items = scaled(100'000);
        DbServer server(items, ServerCosts{});
        LruIndexTarget::Config tcfg;
        tcfg.partitions = 8;
        tcfg.levels = 2;  // two pipelines, as on the paper's testbed
        tcfg.units_per_level =
            std::max<std::size_t>(units / tcfg.partitions, 8);
        tcfg.seed = 0xC1;
        trace::YcsbConfig wl;
        wl.items = items;
        wl.zipf_alpha = 0.9;
        wl.seed = 77;
        const auto ops = make_index_ops(wl, queries / 2);
        const auto make = [&] { return LruIndexTarget(server, tcfg); };
        const auto modes = run_system_series(make, ops, engine_mode_axis());

        std::vector<SystemJsonSeries> json;
        append_system_series(
            json, "YCSB/P4LRU3", ops.size(), modes, "miss_rate",
            [](const LruIndexStats& s) {
                return s.ops == 0 ? 0.0
                                  : static_cast<double>(s.misses) /
                                        static_cast<double>(s.ops);
            });
        ConsoleTable t({"engine mode", "workers", "wall s", "Mops/s",
                        "miss %", "matches sequential"});
        for (const auto& m : modes) {
            all_match &= m.matches_sequential;
            t.add_row({m.mode, std::to_string(m.workers),
                       ConsoleTable::num(m.wall_s, 3),
                       ConsoleTable::num(m.mops, 2),
                       pct(static_cast<double>(m.stats.misses) /
                           static_cast<double>(m.stats.ops)),
                       m.matches_sequential ? "yes" : "NO"});
        }
        t.print("Figure 10(c): LruIndex through the generic replay engine");
        write_system_json("BENCH_fig10_lruindex.json", "fig10_lruindex",
                          json);
        std::printf(
            "Engine axis: inline + 2/4-worker sharded replays %s the\n"
            "sequential statistics bit for bit; series in "
            "BENCH_fig10_lruindex.json.\n",
            all_match ? "match" : "MISMATCH");
    }

    std::printf(
        "\nPaper shape: throughput scales near-linearly with threads\n"
        "(98.5 -> 644.8 KTPS over 1 -> 8); P4LRU3 edges the baseline by a\n"
        "few percent (up to 1.03x in (a), 1.08x in (b)); both beat Naive by\n"
        "1.2-1.4x. The gain is muted because YCSB's stochastic keys have\n"
        "weaker temporal locality than CAIDA traffic (paper Section 4.1).\n");
    return all_match ? 0 : 1;
}
