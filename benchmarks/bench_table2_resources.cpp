// Table 2 — hardware resources used by the three P4LRU systems, computed
// from the actual pipeline programs against approximate Tofino-1 per-
// pipeline budgets (DESIGN.md documents the substitution).
#include <cstdio>

#include "p4lru/pipeline/system_resources.hpp"

int main() {
    using namespace p4lru::pipeline;

    std::printf(
        "Table 2: hardware resources used by P4LRU systems\n"
        "(computed from the pipeline programs; paper sizes: LruTable 2^16\n"
        "units / 1 pipeline, LruIndex 4 x 2^16 units / 4 pipelines, LruMon\n"
        "2^20+2^19 Tower counters + 2^17 units / 2 pipelines)\n");

    const auto table = lrutable_resources();
    std::printf("\n== LruTable (pipelines used: %zu) ==\n%s",
                table.pipelines_used, table.to_table().c_str());

    const auto index = lruindex_resources();
    std::printf("\n== LruIndex (pipelines used: %zu) ==\n%s",
                index.pipelines_used, index.to_table().c_str());

    const auto mon = lrumon_resources();
    std::printf("\n== LruMon (pipelines used: %zu) ==\n%s",
                mon.pipelines_used, mon.to_table().c_str());

    std::printf(
        "\nPaper reference (percent): LruTable hash 7.55 / SALU 14.58,\n"
        "LruIndex hash 10.82 / SALU 20.83, LruMon SRAM 24.90 / SALU 17.71.\n"
        "Expected shape: LruIndex > LruTable in every class; LruMon\n"
        "dominated by counter SRAM; TCAM = 0 everywhere.\n");
    return 0;
}
