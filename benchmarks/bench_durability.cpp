// Durability-plane microbench (DESIGN.md §12): what crash safety costs.
//
// Reports, over one threaded replay workload:
//   * plain          — the engine with no checkpointing (baseline)
//   * checkpointed   — quiesce + serialize cuts, discarded (protocol cost)
//   * durable        — every cut installed into a DurableStore (no fsync)
//   * durable_fsync  — the same with fsync'd installs (full crash safety)
//   * crash_recover  — three injected crashes + recovery ladder restarts
// plus the byte-level serialize / parse / CRC-verify throughput of a sealed
// checkpoint image and the recovery-scan latency over a populated store.
//
// Emits BENCH_durability.json (schema 1) next to the binary so the cost of
// the durability ladder is tracked run over run, like the other benches.
#include <algorithm>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "p4lru/core/p4lru.hpp"
#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/replay/durable_store.hpp"
#include "p4lru/replay/replay.hpp"
#include "p4lru/replay/supervisor.hpp"
#include "p4lru/replay/target_checkpoint.hpp"
#include "bench_common.hpp"

namespace {

using namespace p4lru;
using bench::StopWatch;
using Cache = core::ParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>,
                                  FlowKey, std::uint32_t>;
using Target = replay::CacheReplayTarget<Cache, FlowKey, std::uint32_t>;
using Op = replay::ReplayOp<FlowKey, std::uint32_t>;

constexpr std::size_t kUnits = 4'096;
constexpr std::uint32_t kSeed = 0x7A;

struct Row {
    std::string name;
    double wall_s = 0.0;
    std::uint64_t ops = 0;
    std::uint64_t installs = 0;
    std::uint64_t crashes = 0;
    std::uint64_t bytes = 0;  ///< durable bytes written (installs * image)
};

/// Scratch directory under the system temp dir, removed on destruction.
struct Scratch {
    std::string path;
    explicit Scratch(const char* tag) {
        namespace fs = std::filesystem;
        std::error_code ec;
        fs::path base = fs::temp_directory_path(ec);
        if (ec) base = "/tmp";
        path = (base / (std::string(tag) + "." +
                        std::to_string(static_cast<unsigned long>(
                            std::chrono::steady_clock::now()
                                .time_since_epoch()
                                .count() &
                            0xFFFFFF))))
                   .string();
        fs::create_directories(path, ec);
    }
    ~Scratch() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

replay::ShardedConfig engine_cfg() {
    replay::ShardedConfig cfg;
    cfg.shards = 4;
    cfg.batch_ops = 128;
    cfg.mode = replay::Mode::kThreaded;
    return cfg;
}

}  // namespace

int main() {
    const auto trace = bench::make_trace(4, 13, bench::scaled(400'000));
    const auto ops = replay::ops_from_packets(trace);
    const auto span = std::span<const Op>(ops);
    const auto cfg = engine_cfg();
    constexpr std::uint64_t kCadence = 32;  // install every 32 batches

    std::vector<Row> rows;

    {  // plain: no checkpoint machinery at all.
        Cache cache(kUnits, kSeed);
        StopWatch w;
        const auto rep = replay::replay_sharded(cache, span, cfg);
        rows.push_back({"plain", w.seconds(), rep.stats.ops, 0, 0, 0});
    }

    std::uint64_t image_bytes = 0;
    {  // checkpointed: quiesce + serialize every cut, then discard.
        Cache cache(kUnits, kSeed);
        Target target(cache);
        std::uint64_t cuts = 0;
        StopWatch w;
        const auto rep = replay::replay_target_checkpointed(
            target, span, cfg, kCadence,
            [&](replay::TargetCheckpoint<replay::ReplayStats>&& cp) {
                const auto img = replay::serialize_target_checkpoint(cp);
                image_bytes = img.bytes.size();
                ++cuts;
            });
        rows.push_back({"checkpointed", w.seconds(), rep.stats.ops, cuts, 0,
                        0});
    }

    const auto durable_run = [&](const char* name, bool sync,
                                 const fault::FaultPlan& plan,
                                 std::uint64_t expected_crashes) {
        Scratch scratch("p4lru_bench_dur");
        replay::DurableStoreConfig scfg;
        scfg.retain = 4;
        scfg.sync = sync;
        replay::DurableStore store(scratch.path + "/store", scfg);
        std::deque<Cache> lives;
        auto factory = [&lives] {
            lives.emplace_back(kUnits, kSeed);
            return Target(lives.back());
        };
        replay::SupervisorConfig sup;
        sup.every_batches = kCadence;
        sup.max_attempts = expected_crashes + 2;
        StopWatch w;
        const auto sv =
            replay::run_supervised(factory, span, cfg, store, sup, plan);
        const double secs = w.seconds();
        if (!sv.is_ok() || sv.value().crashes != expected_crashes) {
            std::fprintf(stderr, "bench_durability: %s failed: %s\n", name,
                         sv.is_ok() ? "unexpected crash count"
                                    : sv.status().to_string().c_str());
            return false;
        }
        rows.push_back({name, secs, sv.value().report.stats.ops,
                        sv.value().installs, sv.value().crashes,
                        sv.value().installs * image_bytes});
        return true;
    };

    if (!durable_run("durable", false, {}, 0)) return 1;
    if (!durable_run("durable_fsync", true, {}, 0)) return 1;
    // Crash ordinals are cumulative across attempts, and a resumed attempt
    // only re-installs the suffix — space them off the uninterrupted install
    // count so all three fire even under P4LRU_SCALE shrinkage.
    const std::uint64_t full_installs =
        ops.size() / (kCadence * cfg.batch_ops);
    const std::uint64_t step = std::max<std::uint64_t>(full_installs / 5, 1);
    fault::FaultPlan crashes;
    crashes.crash(step, fault::CrashPoint::kTornInstall, 2)
        .crash(2 * step, fault::CrashPoint::kBeforeRename)
        .crash(3 * step, fault::CrashPoint::kTornTemp, 1);
    if (!durable_run("crash_recover", false, crashes, 3)) return 1;

    // --- byte-level costs over one representative image -------------------
    Cache img_cache(kUnits, kSeed);
    Target img_target(img_cache);
    (void)replay::replay_sharded(img_cache, span, cfg);
    const auto cut = replay::take_target_checkpoint(
        img_target,
        replay::BasicCheckpointCut<replay::ReplayStats>{
            .cursor = ops.size(),
            .stats = {ops.size(), 0, 0, 0}});
    constexpr int kReps = 200;
    double ser_s = 0, parse_s = 0, verify_s = 0;
    replay::SerializedCheckpoint image;
    {
        StopWatch w;
        for (int i = 0; i < kReps; ++i) {
            image = replay::serialize_target_checkpoint(cut);
        }
        ser_s = w.seconds() / kReps;
    }
    {
        StopWatch w;
        for (int i = 0; i < kReps; ++i) {
            const auto r = replay::parse_target_checkpoint<
                replay::ReplayStats>(image.bytes, "bench");
            if (!r.is_ok()) return 1;
        }
        parse_s = w.seconds() / kReps;
    }
    {
        StopWatch w;
        for (int i = 0; i < kReps; ++i) {
            if (!replay::verify_checkpoint_image(image.bytes, "bench")
                     .is_ok()) {
                return 1;
            }
        }
        verify_s = w.seconds() / kReps;
    }

    // --- recovery-scan latency over a populated store ---------------------
    double scan_s = 0;
    {
        Scratch scratch("p4lru_bench_dur");
        replay::DurableStore store(scratch.path + "/store",
                                   {.retain = 4, .sync = false});
        for (int i = 0; i < 4; ++i) {
            if (!store.install(image).is_ok()) return 1;
        }
        StopWatch w;
        for (int i = 0; i < kReps; ++i) {
            const auto rec = store.recover_newest(
                [](const std::vector<std::byte>& bytes,
                   const std::string& origin) {
                    return replay::parse_target_checkpoint<
                        replay::ReplayStats>(bytes, origin);
                });
            if (!rec.found) return 1;
        }
        scan_s = w.seconds() / kReps;
    }

    const double mb = static_cast<double>(image.bytes.size()) / 1e6;
    ConsoleTable t({"series", "wall s", "Mops/s", "installs", "crashes",
                    "MB written"});
    for (const auto& r : rows) {
        t.add_row({r.name, ConsoleTable::num(r.wall_s, 3),
                   ConsoleTable::num(static_cast<double>(r.ops) / r.wall_s /
                                         1e6,
                                     2),
                   std::to_string(r.installs), std::to_string(r.crashes),
                   ConsoleTable::num(static_cast<double>(r.bytes) / 1e6,
                                     1)});
    }
    t.print("durability ladder: " + std::to_string(ops.size()) + " ops, " +
            std::to_string(image.bytes.size()) + "-byte sealed images");
    std::printf(
        "image ops: serialize %.1f MB/s, parse %.1f MB/s, verify %.1f "
        "MB/s, recovery scan %.1f us (4 generations)\n",
        mb / ser_s, mb / parse_s, mb / verify_s, scan_s * 1e6);

    std::FILE* f = std::fopen("BENCH_durability.json", "w");
    if (!f) return 1;
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"durability\",\n"
                 "  \"schema\": 1,\n"
                 "  \"scale\": %.3f,\n"
                 "  \"hardware_threads\": %zu,\n"
                 "  \"image_bytes\": %zu,\n"
                 "  \"serialize_mb_s\": %.1f,\n"
                 "  \"parse_mb_s\": %.1f,\n"
                 "  \"verify_mb_s\": %.1f,\n"
                 "  \"recovery_scan_us\": %.1f,\n"
                 "  \"series\": [\n",
                 bench::scale(), bench::usable_hardware_threads(),
                 image.bytes.size(), mb / ser_s, mb / parse_s, mb / verify_s,
                 scan_s * 1e6);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"wall_s\": %.6f, "
                     "\"ops\": %llu, \"installs\": %llu, \"crashes\": %llu, "
                     "\"durable_bytes\": %llu}%s\n",
                     r.name.c_str(), r.wall_s,
                     static_cast<unsigned long long>(r.ops),
                     static_cast<unsigned long long>(r.installs),
                     static_cast<unsigned long long>(r.crashes),
                     static_cast<unsigned long long>(r.bytes),
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_durability.json\n");
    return 0;
}
