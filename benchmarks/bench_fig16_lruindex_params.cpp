// Figure 16 — LruIndex parameter experiment (Section 4.2.2).
//   (a) miss rate vs #connection levels   (b) LRU similarity vs #levels
//   (c) miss rate vs memory               (d) miss rate vs query latency dT
// Series: P4LRU1 / P4LRU2 / P4LRU3 series-connected caches (and LRU_IDEAL
// in (c)/(d) as the bound).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "p4lru/cache/similarity.hpp"
#include "p4lru/trace/ycsb.hpp"
#include "p4lru/systems/lruindex/db_server.hpp"
#include "p4lru/systems/lruindex/driver.hpp"
#include "p4lru/systems/lruindex/index_cache.hpp"

using namespace p4lru;
using namespace p4lru::bench;
using namespace p4lru::systems::lruindex;

namespace {

/// Series cache instrumented with the LRU-similarity tracker: promotes and
/// inserts count as accesses; only entries pushed out of the LAST level are
/// true evictions (level-to-level moves keep the key cached).
template <std::size_t N>
class TrackedSeries final : public IndexCache {
  public:
    TrackedSeries(std::size_t levels, std::size_t units, std::uint32_t seed,
                  std::size_t max_accesses)
        : series_(levels, units, seed), tracker_(max_accesses) {}

    CacheHeader query(DbKey key) const override {
        CacheHeader hdr;
        const auto lk = series_.query(key);
        if (lk.hit()) {
            hdr.cached_flag = static_cast<std::uint32_t>(lk.level);
            hdr.cached_index = lk.value;
        }
        return hdr;
    }

    void reply(DbKey key, index::RecordAddress addr, const CacheHeader& hdr,
               TimeNs /*now*/) override {
        if (hdr.hit()) {
            series_.reply_promote(key, addr, hdr.cached_flag);
            tracker_.on_access(key);
        } else {
            const auto out = series_.reply_insert(key, addr);
            tracker_.on_access(key);
            if (out) tracker_.on_evict(out->first);
        }
    }

    std::size_t capacity_entries() const override {
        return series_.capacity();
    }
    std::string name() const override {
        return "P4LRU" + std::to_string(N);
    }
    [[nodiscard]] double similarity() const {
        return tracker_.similarity();
    }

  private:
    core::SeriesCache<core::P4lru<DbKey, index::RecordAddress, N>, DbKey,
                      index::RecordAddress>
        series_;
    mutable cache::SimilarityTracker<DbKey> tracker_;
};

struct Outcome {
    double miss = 0;
    double similarity = 0;
};

template <std::size_t N>
Outcome run_series(DbServer& server, std::size_t levels,
                   std::size_t units_per_level, std::size_t queries) {
    TrackedSeries<N> cache(levels, units_per_level, 0x160,
                           queries + levels + 8);
    DriverConfig cfg;
    cfg.threads = 8;
    cfg.queries = queries;
    cfg.workload.items = server.items();
    cfg.workload.zipf_alpha = 0.9;
    cfg.workload.seed = 160;
    const auto r = run_driver(cfg, server, &cache);
    return {r.miss_rate, cache.similarity()};
}

double run_ideal(DbServer& server, std::size_t entries,
                 std::size_t queries) {
    PolicyIndexCache cache(
        std::make_unique<cache::IdealLruPolicy<DbKey,
                                               index::RecordAddress>>(
            entries));
    DriverConfig cfg;
    cfg.threads = 8;
    cfg.queries = queries;
    cfg.workload.items = server.items();
    cfg.workload.zipf_alpha = 0.9;
    cfg.workload.seed = 160;
    return run_driver(cfg, server, &cache).miss_rate;
}

}  // namespace

int main() {
    const std::uint64_t items = scaled(200'000);
    const std::size_t queries = scaled(100'000);
    const std::size_t base_units = scaled(1u << 12);  // per level

    // --- (a)+(b): sweep connection levels at fixed total entries ----------
    {
        DbServer server(items, ServerCosts{});
        ConsoleTable a({"levels", "P4LRU1 %", "P4LRU2 %", "P4LRU3 %"});
        ConsoleTable b({"levels", "P4LRU1 sim", "P4LRU2 sim", "P4LRU3 sim"});
        const std::size_t total_units = base_units * 4;
        for (const std::size_t levels : {1u, 2u, 4u, 8u}) {
            const std::size_t per_level = total_units / levels;
            const auto p1 =
                run_series<1>(server, levels, per_level * 3, queries);
            const auto p2 = run_series<2>(server, levels,
                                          per_level * 3 / 2, queries);
            const auto p3 = run_series<3>(server, levels, per_level, queries);
            a.add_row({std::to_string(levels), pct(p1.miss), pct(p2.miss),
                       pct(p3.miss)});
            b.add_row({std::to_string(levels),
                       ConsoleTable::num(p1.similarity, 4),
                       ConsoleTable::num(p2.similarity, 4),
                       ConsoleTable::num(p3.similarity, 4)});
        }
        a.print(
            "Figure 16(a): LruIndex miss rate vs #connection levels (equal "
            "total entries)");
        b.print("Figure 16(b): LruIndex LRU similarity vs #connection levels");
    }

    // --- (c): sweep memory at 4 levels -------------------------------------
    {
        DbServer server(items, ServerCosts{});
        ConsoleTable c({"total entries", "LRU_IDEAL %", "P4LRU1 %",
                        "P4LRU2 %", "P4LRU3 %"});
        for (const double mult : {0.125, 0.25, 0.5, 1.0}) {
            const auto units =
                static_cast<std::size_t>(base_units * mult);
            const std::size_t entries = units * 3 * 4;
            const auto p1 = run_series<1>(server, 4, units * 3, queries);
            const auto p2 = run_series<2>(server, 4, units * 3 / 2, queries);
            const auto p3 = run_series<3>(server, 4, units, queries);
            c.add_row({std::to_string(entries),
                       pct(run_ideal(server, entries, queries)),
                       pct(p1.miss), pct(p2.miss), pct(p3.miss)});
        }
        c.print("Figure 16(c): LruIndex miss rate vs memory (4 levels)");
    }

    // --- (d): sweep server query latency -----------------------------------
    {
        ConsoleTable d({"dT us (index cost)", "LRU_IDEAL %", "P4LRU1 %",
                        "P4LRU2 %", "P4LRU3 %"});
        for (const TimeNs hop : {1'000u, 3'000u, 9'000u, 27'000u}) {
            ServerCosts costs;
            costs.per_index_hop = hop;
            DbServer server(items, costs);
            const auto p1 =
                run_series<1>(server, 4, base_units * 3, queries);
            const auto p2 =
                run_series<2>(server, 4, base_units * 3 / 2, queries);
            const auto p3 = run_series<3>(server, 4, base_units, queries);
            d.add_row({std::to_string(hop * 4 / 1000),
                       pct(run_ideal(server, base_units * 12, queries)),
                       pct(p1.miss), pct(p2.miss), pct(p3.miss)});
        }
        d.print("Figure 16(d): LruIndex miss rate vs query latency");
    }

    // --- Extension: round-trip protocol vs naive single-pass injection ----
    {
        trace::YcsbConfig wl;
        wl.items = items;
        wl.zipf_alpha = 0.9;
        wl.seed = 161;
        ConsoleTable t({"mode", "hit %", "duplicate keys %"});
        using Series =
            core::SeriesCache<core::P4lru<DbKey, index::RecordAddress, 3>,
                              DbKey, index::RecordAddress>;
        {
            Series s(4, base_units, 0x161);
            trace::YcsbWorkload w(wl);
            std::size_t hits = 0;
            for (std::size_t i = 0; i < queries; ++i) {
                const DbKey k = w.next().key;
                const auto lk = s.query(k);
                if (lk.hit()) {
                    ++hits;
                    s.reply_promote(k, lk.value, lk.level);
                } else {
                    s.reply_insert(k, k + 1);
                }
            }
            t.add_row({"round-trip (paper)",
                       pct(static_cast<double>(hits) / queries),
                       pct(s.duplicate_fraction())});
        }
        {
            Series s(4, base_units, 0x161);
            trace::YcsbWorkload w(wl);
            std::size_t hits = 0;
            for (std::size_t i = 0; i < queries; ++i) {
                hits += s.naive_inject(w.next().key, 1).hit ? 1 : 0;
            }
            t.add_row({"naive single-pass",
                       pct(static_cast<double>(hits) / queries),
                       pct(s.duplicate_fraction())});
        }
        t.print(
            "Extension: series-connection ablation — the round-trip "
            "protocol avoids duplicate entries (Section 3.2)");
    }

    std::printf(
        "\nPaper shape: P4LRU3 always lowest; P4LRU2/3 clearly beat P4LRU1;\n"
        "more levels raise P4LRU1/2 similarity while P4LRU3's similarity\n"
        "drops slightly (the paper's argument for defaulting to 4 levels);\n"
        "P4LRU3 stays closest to LRU_IDEAL across memory and latency.\n");
    return 0;
}
