// Figure 9 — LruTable testbed experiment.
//   (a) fast-path miss rate vs traffic concurrency (CAIDA_1 .. CAIDA_60)
//   (b) added latency vs concurrency
// Series: P4LRU3 (the system) and Baseline (hash-table cache = P4LRU1),
// exactly the comparison of the paper's testbed run.
//
// The replay runs through the generic engine (LruTableTarget +
// run_system_series): every figure point is the sequential reference, and
// the heaviest trace (CAIDA_60) additionally sweeps the engine-mode axis —
// inline batching and threaded sharding at 2 and 4 workers — emitting a
// multi-worker throughput series to BENCH_fig09_lrutable.json with a
// bit-equality check against the sequential statistics.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "p4lru/systems/lrutable/lrutable_target.hpp"

using namespace p4lru;
using namespace p4lru::bench;
using namespace p4lru::systems::lrutable;

namespace {

using Factory = PolicyFactory<VirtualAddress, std::uint32_t>;

// The target partitions the gateway by mix64(dst_ip) % G; both series run
// with the same geometry so the P4LRU3-vs-Baseline comparison is
// apples-to-apples.
constexpr std::size_t kPartitions = 8;

/// Split `total` cache entries across the partitions, each slice seeded
/// distinctly.  `make` is one of the Factory::p4lruN constructors.
template <typename Make>
LruTableTarget::PolicyFactory slices(std::size_t total, std::uint32_t seed,
                                     Make make) {
    const std::size_t per = std::max<std::size_t>(total / kPartitions, 3);
    return [per, seed, make](std::size_t p) {
        return make(per, seed + static_cast<std::uint32_t>(p) * 0x9E37u);
    };
}

struct RunResult {
    LruTableReport report;  ///< from the sequential reference statistics
    std::vector<SystemModePoint<LruTableStats>> modes;
};

RunResult run(const std::vector<PacketRecord>& trace,
              const LruTableTarget::PolicyFactory& policies,
              const std::vector<EngineMode>& axis) {
    LruTableConfig cfg;
    cfg.slow_path_delay = 40 * kMicrosecond;  // control-plane RTT
    const auto make = [&] {
        return LruTableTarget(kPartitions, policies, cfg);
    };
    RunResult r;
    r.modes = run_system_series(make, trace, axis);
    r.report = LruTableTarget(kPartitions, policies, cfg)
                   .report(r.modes.front().stats);
    return r;
}

}  // namespace

int main() {
    // Cache sized like the paper relative to the trace: the array holds
    // roughly the peak flow concurrency of the busiest trace.
    const std::size_t entries = scaled(3 * (1u << 12));

    ConsoleTable a({"trace", "max concurrent flows", "P4LRU3 miss %",
                    "Baseline miss %", "improvement x"});
    ConsoleTable b({"trace", "max concurrent flows", "P4LRU3 latency us",
                    "Baseline latency us", "improvement x"});
    std::vector<SystemJsonSeries> json;
    const auto miss_rate = [](const LruTableStats& s) {
        return s.ops == 0
                   ? 0.0
                   : static_cast<double>(s.placeholder_hits + s.misses) /
                         static_cast<double>(s.ops);
    };

    for (const std::size_t n : concurrency_sweep()) {
        const auto trace = make_trace(n, /*seed=*/40 + n);
        const auto stats = trace::compute_stats(trace);
        // Full engine axis only on the heaviest trace; the other figure
        // points need just the sequential reference.
        const auto axis = n == 60 ? engine_mode_axis() : sequential_axis();

        const auto p3 =
            run(trace, slices(entries, 0x91, Factory::p4lru3), axis);
        const auto p1 =
            run(trace, slices(entries, 0x91, Factory::p4lru1), axis);
        const std::string tag = "CAIDA" + std::to_string(n);
        append_system_series(json, tag + "/P4LRU3", trace.size(), p3.modes,
                             "miss_rate", miss_rate);
        append_system_series(json, tag + "/Baseline", trace.size(), p1.modes,
                             "miss_rate", miss_rate);

        a.add_row({tag, std::to_string(stats.max_concurrent),
                   pct(p3.report.miss_rate), pct(p1.report.miss_rate),
                   ConsoleTable::num(
                       p1.report.miss_rate / p3.report.miss_rate, 2)});
        b.add_row({tag, std::to_string(stats.max_concurrent),
                   ConsoleTable::num(p3.report.avg_added_latency_us, 3),
                   ConsoleTable::num(p1.report.avg_added_latency_us, 3),
                   ConsoleTable::num(p1.report.avg_added_latency_us /
                                         p3.report.avg_added_latency_us,
                                     2)});
    }

    a.print("Figure 9(a): LruTable miss rate vs concurrency");
    b.print("Figure 9(b): LruTable added latency vs concurrency");

    bool all_match = true;
    for (const auto& row : json) all_match &= row.matches_sequential;
    write_system_json("BENCH_fig09_lrutable.json", "fig09_lrutable", json);
    std::printf(
        "\nEngine axis (CAIDA60): inline + 2/4-worker sharded replays %s\n"
        "the sequential statistics bit for bit; series in "
        "BENCH_fig09_lrutable.json.\n",
        all_match ? "match" : "MISMATCH");
    std::printf(
        "\nPaper shape: miss rate rises with concurrency; P4LRU3 roughly\n"
        "halves the baseline miss rate (paper: 1.4-2.7%% vs 3.0-5.1%%, up\n"
        "to 2.14x) and cuts added latency up to 1.35x.\n");
    return all_match ? 0 : 1;
}
