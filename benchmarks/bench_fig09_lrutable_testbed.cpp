// Figure 9 — LruTable testbed experiment.
//   (a) fast-path miss rate vs traffic concurrency (CAIDA_1 .. CAIDA_60)
//   (b) added latency vs concurrency
// Series: P4LRU3 (the system) and Baseline (hash-table cache = P4LRU1),
// exactly the comparison of the paper's testbed run.
#include <cstdio>

#include "bench_common.hpp"
#include "p4lru/systems/lrutable/lrutable.hpp"

using namespace p4lru;
using namespace p4lru::bench;
using namespace p4lru::systems::lrutable;

namespace {

using Factory = PolicyFactory<VirtualAddress, std::uint32_t>;

LruTableReport run(const std::vector<PacketRecord>& trace,
                   Factory::Ptr policy) {
    LruTableConfig cfg;
    cfg.slow_path_delay = 40 * kMicrosecond;  // control-plane RTT
    LruTableSystem sys(std::move(policy), cfg);
    for (const auto& p : trace) sys.process(p);
    sys.finish();
    return sys.report();
}

}  // namespace

int main() {
    // Cache sized like the paper relative to the trace: the array holds
    // roughly the peak flow concurrency of the busiest trace.
    const std::size_t entries = scaled(3 * (1u << 12));

    ConsoleTable a({"trace", "max concurrent flows", "P4LRU3 miss %",
                    "Baseline miss %", "improvement x"});
    ConsoleTable b({"trace", "max concurrent flows", "P4LRU3 latency us",
                    "Baseline latency us", "improvement x"});

    for (const std::size_t n : concurrency_sweep()) {
        const auto trace = make_trace(n, /*seed=*/40 + n);
        const auto stats = trace::compute_stats(trace);

        const auto p3 = run(trace, Factory::p4lru3(entries, 0x91));
        const auto p1 = run(trace, Factory::p4lru1(entries, 0x91));

        a.add_row({"CAIDA" + std::to_string(n),
                   std::to_string(stats.max_concurrent),
                   pct(p3.miss_rate), pct(p1.miss_rate),
                   ConsoleTable::num(p1.miss_rate / p3.miss_rate, 2)});
        b.add_row({"CAIDA" + std::to_string(n),
                   std::to_string(stats.max_concurrent),
                   ConsoleTable::num(p3.avg_added_latency_us, 3),
                   ConsoleTable::num(p1.avg_added_latency_us, 3),
                   ConsoleTable::num(
                       p1.avg_added_latency_us / p3.avg_added_latency_us,
                       2)});
    }

    a.print("Figure 9(a): LruTable miss rate vs concurrency");
    b.print("Figure 9(b): LruTable added latency vs concurrency");
    std::printf(
        "\nPaper shape: miss rate rises with concurrency; P4LRU3 roughly\n"
        "halves the baseline miss rate (paper: 1.4-2.7%% vs 3.0-5.1%%, up\n"
        "to 2.14x) and cuts added latency up to 1.35x.\n");
    return 0;
}
