// Figure 17 — LruMon parameter experiment (Section 4.2.2): accuracy vs
// upload volume of the Tower filter + P4LRU3 pipeline.
//   (a) total error rate vs bandwidth threshold (threshold / reset period),
//       one series per reset period
//   (b) upload rate vs filter threshold, per reset period
//   (c) upload rate vs total error (parametric over the threshold sweep)
//   (d) max per-flow error vs threshold (never exceeds the threshold beyond
//       per-window slack)
// Extension: the filter-kind ablation (Tower vs CM vs CU) the paper hints
// at in Section 3.3.
#include <cstdio>

#include "bench_common.hpp"
#include "p4lru/systems/lrumon/lrumon.hpp"

using namespace p4lru;
using namespace p4lru::bench;
using namespace p4lru::systems::lrumon;

namespace {

using Factory = PolicyFactory<std::uint32_t, FlowLen, core::AddMerge>;

LruMonReport run(const std::vector<PacketRecord>& trace, TimeNs reset,
                 std::uint32_t threshold, FilterKind kind,
                 std::size_t filter_scale = 1) {
    FilterConfig fcfg;
    fcfg.reset_period = reset;
    fcfg.tower_width1 = scaled((1u << 17) / filter_scale);
    fcfg.tower_width2 = scaled((1u << 16) / filter_scale);
    fcfg.cm_width = scaled((3u << 14) / filter_scale);  // equal memory: 96KB
    LruMonConfig cfg;
    cfg.threshold = threshold;
    LruMonSystem sys(make_filter(kind, fcfg),
                     Factory::p4lru3(scaled(3 * (1u << 10)), 0x17A), cfg);
    for (const auto& p : trace) sys.process(p);
    sys.finish();
    return sys.report();
}

}  // namespace

int main() {
    const auto trace = make_trace(60, 170);
    const std::vector<TimeNs> resets = {5 * kMillisecond, 10 * kMillisecond,
                                        20 * kMillisecond};
    const std::vector<std::uint32_t> thresholds = {500, 1000, 2000, 4000,
                                                   8000};

    ConsoleTable a({"bandwidth thr KB/s", "reset ms", "total error %"});
    ConsoleTable b({"threshold B", "reset ms", "upload KPPS"});
    ConsoleTable c({"reset ms", "total error %", "upload KPPS"});
    ConsoleTable d({"threshold B", "reset ms", "max flow error B",
                    "overestimated flows"});

    for (const TimeNs reset : resets) {
        for (const std::uint32_t thr : thresholds) {
            const auto r = run(trace, reset, thr, FilterKind::kTower);
            const double bw_kbps =
                static_cast<double>(thr) /
                (static_cast<double>(reset) / 1e9) / 1e3;
            a.add_row({ConsoleTable::num(bw_kbps, 0),
                       std::to_string(reset / kMillisecond),
                       pct(r.total_error_rate)});
            b.add_row({std::to_string(thr),
                       std::to_string(reset / kMillisecond),
                       ConsoleTable::num(r.upload_kpps, 1)});
            c.add_row({std::to_string(reset / kMillisecond),
                       pct(r.total_error_rate),
                       ConsoleTable::num(r.upload_kpps, 1)});
            d.add_row({std::to_string(thr),
                       std::to_string(reset / kMillisecond),
                       std::to_string(r.max_flow_error),
                       std::to_string(r.overestimated_flows)});
        }
    }

    a.print("Figure 17(a): total error rate vs bandwidth threshold");
    b.print("Figure 17(b): upload rate vs filter threshold");
    c.print("Figure 17(c): upload rate vs total error (parametric)");
    d.print("Figure 17(d): max per-flow error vs threshold");

    // Extension: filter ablation at the default setting.
    {
        ConsoleTable t({"filter", "upload KPPS", "total error %",
                        "max flow error B"});
        for (const auto [kind, name] :
             {std::pair{FilterKind::kTower, "Tower"},
              std::pair{FilterKind::kCm, "CM"},
              std::pair{FilterKind::kCu, "CU"}}) {
            // Starved filter memory (1/64 of the default): the regime
            // where the sketch choice matters.
            const auto r = run(trace, 10 * kMillisecond, 1500, kind, 64);
            t.add_row({name, ConsoleTable::num(r.upload_kpps, 1),
                       pct(r.total_error_rate),
                       std::to_string(r.max_flow_error)});
        }
        t.print("Extension: filter-kind ablation (Section 3.3 'compatible "
                "with other sketches')");
    }

    std::printf(
        "\nPaper shape: shorter reset periods -> lower error but more\n"
        "uploads; at equal total error the upload volume is nearly\n"
        "independent of the reset period (c); max flow error stays within\n"
        "the filter threshold (d), modulo one window's slack.\n");
    return 0;
}
