// Micro-benchmarks (google-benchmark): per-operation cost of every layer —
// the behavioural P4LRU unit, the arithmetic-encoded units, the full
// pipeline-model program (orders of magnitude slower: it interprets each
// stage, which is the point — it is a checker, not a fast path), the policy
// implementations, and the sketches.
#include <benchmark/benchmark.h>

#include <vector>

#include "p4lru/cache/policy.hpp"
#include "p4lru/common/random.hpp"
#include "p4lru/core/p4lru.hpp"
#include "p4lru/core/p4lru_encoded.hpp"
#include "p4lru/core/parallel_array.hpp"
#include "p4lru/pipeline/p4lru3_program.hpp"
#include "p4lru/sketch/countmin.hpp"
#include "p4lru/sketch/towersketch.hpp"

namespace {

using namespace p4lru;

std::vector<std::uint32_t> keys(std::size_t n, std::uint32_t universe) {
    rng::Xoshiro256 rng(42);
    std::vector<std::uint32_t> out(n);
    for (auto& k : out) {
        k = static_cast<std::uint32_t>(rng.between(1, universe));
    }
    return out;
}

void BM_P4lru3Behavioural(benchmark::State& state) {
    core::P4lru<std::uint32_t, std::uint32_t, 3> unit;
    const auto ks = keys(4096, 64);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.update(ks[i++ & 4095], 1));
    }
}
BENCHMARK(BM_P4lru3Behavioural);

void BM_P4lru3Encoded(benchmark::State& state) {
    core::P4lru3Encoded<std::uint32_t, std::uint32_t> unit;
    const auto ks = keys(4096, 64);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.update(ks[i++ & 4095], 1));
    }
}
BENCHMARK(BM_P4lru3Encoded);

void BM_P4lru2Encoded(benchmark::State& state) {
    core::P4lru2Encoded<std::uint32_t, std::uint32_t> unit;
    const auto ks = keys(4096, 64);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.update(ks[i++ & 4095], 1));
    }
}
BENCHMARK(BM_P4lru2Encoded);

void BM_ParallelArrayUpdate(benchmark::State& state) {
    core::ParallelCache<core::P4lru<std::uint32_t, std::uint32_t, 3>,
                        std::uint32_t, std::uint32_t>
        array(static_cast<std::size_t>(state.range(0)), 7);
    const auto ks = keys(4096, 1u << 20);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.update(ks[i++ & 4095], 1));
    }
}
BENCHMARK(BM_ParallelArrayUpdate)->Arg(1 << 10)->Arg(1 << 16);

void BM_PipelineProgramUpdate(benchmark::State& state) {
    pipeline::P4lru3PipelineCache cache(1u << 10, 7,
                                        pipeline::ValueMode::kReadCache);
    const auto ks = keys(4096, 1u << 16);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.update(ks[i++ & 4095], 1));
    }
}
BENCHMARK(BM_PipelineProgramUpdate);

void BM_IdealLruAccess(benchmark::State& state) {
    cache::IdealLruPolicy<std::uint32_t, std::uint32_t> lru(
        static_cast<std::size_t>(state.range(0)));
    const auto ks = keys(4096, 1u << 16);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lru.access(ks[i++ & 4095], 1, 0));
    }
}
BENCHMARK(BM_IdealLruAccess)->Arg(1 << 10)->Arg(1 << 16);

void BM_TimeoutPolicyAccess(benchmark::State& state) {
    cache::TimeoutPolicy<std::uint32_t, std::uint32_t> p(1 << 14, 7,
                                                         kMillisecond);
    const auto ks = keys(4096, 1u << 16);
    std::size_t i = 0;
    TimeNs now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(p.access(ks[i++ & 4095], 1, now));
        now += 100;
    }
}
BENCHMARK(BM_TimeoutPolicyAccess);

void BM_TowerSketchAdd(benchmark::State& state) {
    sketch::TowerSketch<std::uint32_t> tower(
        {{1u << 16, 8}, {1u << 15, 16}}, 7);
    const auto ks = keys(4096, 1u << 20);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tower.add_and_estimate(ks[i++ & 4095], 64));
    }
}
BENCHMARK(BM_TowerSketchAdd);

void BM_CountMinAdd(benchmark::State& state) {
    sketch::CountMin<std::uint32_t> cm(1u << 16, 2, 7);
    const auto ks = keys(4096, 1u << 20);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cm.add_and_estimate(ks[i++ & 4095], 64));
    }
}
BENCHMARK(BM_CountMinAdd);

void BM_Crc32FlowKey(benchmark::State& state) {
    FlowKey f;
    f.src_ip = 0x0A000001;
    f.dst_ip = 0xC0A80001;
    f.src_port = 1234;
    f.dst_port = 443;
    f.proto = 6;
    const hash::FlowHasher h(7, 1u << 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.slot(f));
        f.src_port++;
    }
}
BENCHMARK(BM_Crc32FlowKey);

}  // namespace

BENCHMARK_MAIN();
