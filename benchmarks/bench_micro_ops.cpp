// Micro-benchmarks (google-benchmark): per-operation cost of every layer —
// the behavioural P4LRU unit, the arithmetic-encoded units, the full
// pipeline-model program (orders of magnitude slower: it interprets each
// stage, which is the point — it is a checker, not a fast path), the policy
// implementations, and the sketches.
//
// After the google-benchmark suite (skippable with P4LRU_SKIP_GBENCH=1), the
// trace-replay throughput harness runs: the default 1.2M-packet trace through
// a paper-scale parallel array, sequential vs sharded per worker count, and
// writes the machine-readable baseline BENCH_micro_ops.json (path override:
// P4LRU_BENCH_JSON).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <span>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "p4lru/cache/policy.hpp"
#include "p4lru/common/random.hpp"
#include "p4lru/core/p4lru.hpp"
#include "p4lru/core/p4lru_encoded.hpp"
#include "p4lru/core/parallel_array.hpp"
#include "p4lru/core/simd/scan_kernels.hpp"
#include "p4lru/obs/metrics.hpp"
#include "p4lru/pipeline/p4lru3_program.hpp"
#include "p4lru/replay/checkpoint.hpp"
#include "p4lru/replay/op_source.hpp"
#include "p4lru/replay/replay.hpp"
#include "p4lru/sketch/countmin.hpp"
#include "p4lru/sketch/towersketch.hpp"
#include "p4lru/trace/trace_io.hpp"
#include "p4lru/trace/trace_source.hpp"

namespace {

using namespace p4lru;

std::vector<std::uint32_t> keys(std::size_t n, std::uint32_t universe) {
    rng::Xoshiro256 rng(42);
    std::vector<std::uint32_t> out(n);
    for (auto& k : out) {
        k = static_cast<std::uint32_t>(rng.between(1, universe));
    }
    return out;
}

void BM_P4lru3Behavioural(benchmark::State& state) {
    core::P4lru<std::uint32_t, std::uint32_t, 3> unit;
    const auto ks = keys(4096, 64);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.update(ks[i++ & 4095], 1));
    }
}
BENCHMARK(BM_P4lru3Behavioural);

void BM_P4lru3Encoded(benchmark::State& state) {
    core::P4lru3Encoded<std::uint32_t, std::uint32_t> unit;
    const auto ks = keys(4096, 64);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.update(ks[i++ & 4095], 1));
    }
}
BENCHMARK(BM_P4lru3Encoded);

void BM_P4lru2Encoded(benchmark::State& state) {
    core::P4lru2Encoded<std::uint32_t, std::uint32_t> unit;
    const auto ks = keys(4096, 64);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.update(ks[i++ & 4095], 1));
    }
}
BENCHMARK(BM_P4lru2Encoded);

// Default storage (the SoA slab for behavioural units).
void BM_ParallelArrayUpdate(benchmark::State& state) {
    core::ParallelCache<core::P4lru<std::uint32_t, std::uint32_t, 3>,
                        std::uint32_t, std::uint32_t>
        array(static_cast<std::size_t>(state.range(0)), 7);
    const auto ks = keys(4096, 1u << 20);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.update(ks[i++ & 4095], 1));
    }
}
BENCHMARK(BM_ParallelArrayUpdate)->Arg(1 << 10)->Arg(1 << 16);

// Same array pinned to the AoS reference layout — the head-to-head for the
// layout split.
void BM_ParallelArrayUpdateAos(benchmark::State& state) {
    core::AosParallelCache<core::P4lru<std::uint32_t, std::uint32_t, 3>,
                           std::uint32_t, std::uint32_t>
        array(static_cast<std::size_t>(state.range(0)), 7);
    const auto ks = keys(4096, 1u << 20);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.update(ks[i++ & 4095], 1));
    }
}
BENCHMARK(BM_ParallelArrayUpdateAos)->Arg(1 << 10)->Arg(1 << 16);

void BM_PipelineProgramUpdate(benchmark::State& state) {
    pipeline::P4lru3PipelineCache cache(1u << 10, 7,
                                        pipeline::ValueMode::kReadCache);
    const auto ks = keys(4096, 1u << 16);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.update(ks[i++ & 4095], 1));
    }
}
BENCHMARK(BM_PipelineProgramUpdate);

void BM_IdealLruAccess(benchmark::State& state) {
    cache::IdealLruPolicy<std::uint32_t, std::uint32_t> lru(
        static_cast<std::size_t>(state.range(0)));
    const auto ks = keys(4096, 1u << 16);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lru.access(ks[i++ & 4095], 1, 0));
    }
}
BENCHMARK(BM_IdealLruAccess)->Arg(1 << 10)->Arg(1 << 16);

void BM_TimeoutPolicyAccess(benchmark::State& state) {
    cache::TimeoutPolicy<std::uint32_t, std::uint32_t> p(1 << 14, 7,
                                                         kMillisecond);
    const auto ks = keys(4096, 1u << 16);
    std::size_t i = 0;
    TimeNs now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(p.access(ks[i++ & 4095], 1, now));
        now += 100;
    }
}
BENCHMARK(BM_TimeoutPolicyAccess);

void BM_TowerSketchAdd(benchmark::State& state) {
    sketch::TowerSketch<std::uint32_t> tower(
        {{1u << 16, 8}, {1u << 15, 16}}, 7);
    const auto ks = keys(4096, 1u << 20);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tower.add_and_estimate(ks[i++ & 4095], 64));
    }
}
BENCHMARK(BM_TowerSketchAdd);

void BM_CountMinAdd(benchmark::State& state) {
    sketch::CountMin<std::uint32_t> cm(1u << 16, 2, 7);
    const auto ks = keys(4096, 1u << 20);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cm.add_and_estimate(ks[i++ & 4095], 64));
    }
}
BENCHMARK(BM_CountMinAdd);

void BM_Crc32FlowKey(benchmark::State& state) {
    FlowKey f;
    f.src_ip = 0x0A000001;
    f.dst_ip = 0xC0A80001;
    f.src_port = 1234;
    f.dst_port = 443;
    f.proto = 6;
    const hash::FlowHasher h(7, 1u << 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.slot(f));
        f.src_port++;
    }
}
BENCHMARK(BM_Crc32FlowKey);

// ---------------------------------------------------------------------------
// Trace-replay throughput: both storage layouts (AoS reference vs SoA slab),
// sequential vs sharded engine, on the default bench trace. Aggregate
// statistics must be identical across every series of both layouts (the
// engine's and the slab's bit-equivalence guarantees, asserted at full
// scale).

using ReplaySpan = std::span<const replay::ReplayOp<FlowKey, std::uint32_t>>;

/// Scan kernel the next replay run will execute (override-aware).
const char* active_kernel_name() {
    return core::simd::kernel_name(core::simd::active_kernel());
}

/// Sequential (per-op and batched) + sharded{1,2,4,8} series for one cache
/// layout.  Each series runs kReps times on a fresh cache; best wall time
/// is reported (standard throughput practice — the floor is the signal).
/// On a machine with one usable hardware thread the multi-worker sweep is
/// skipped: those rows would measure queue overhead of an inline fallback,
/// not parallel speedup, and have historically been mistaken for the
/// latter.  Returns the layout's best per-op sequential wall time;
/// *stats_out receives the sequential stats.
template <typename Cache>
double run_layout_series(ReplaySpan span, std::size_t units,
                         ConsoleTable& table,
                         std::vector<bench::ReplayJsonSeries>& json,
                         replay::ReplayStats* stats_out) {
    const char* layout = Cache::storage_type::layout_name();
    const char* kernel = active_kernel_name();
    constexpr int kReps = 3;

    // Warmup: touch the trace and code paths once, off the clock.
    {
        Cache warm(units, 0xE1);
        (void)replay::replay_sequential(
            warm, span.subspan(0, std::min<std::size_t>(span.size(),
                                                        100'000)));
    }

    replay::ReplayStats seq_stats;
    double seq_seconds = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        Cache cache(units, 0xE1);
        bench::StopWatch w;
        const auto s = replay::replay_sequential(cache, span);
        const double secs = w.seconds();
        if (rep == 0 || secs < seq_seconds) seq_seconds = secs;
        seq_stats = s;
    }
    {
        const stats::Throughput tp{seq_stats.ops, seq_seconds};
        table.add_row({"sequential", layout, "1", "sequential", kernel,
                       "per_op", ConsoleTable::num(seq_seconds, 3),
                       ConsoleTable::num(tp.mops(), 2), "1.00",
                       bench::pct(seq_stats.hit_rate())});
        json.push_back({"sequential", layout, 0, "sequential", kernel,
                        "per_op", seq_seconds, tp.mops(), seq_stats.ops,
                        seq_stats.hits, seq_stats.misses,
                        seq_stats.evictions});
    }

    // Batched sequential: same op order, hashing hoisted per 256-op chunk
    // with the key-plane line of op i+8 prefetched while op i executes.
    double batched_seconds = 0.0;
    replay::ReplayStats batched_stats;
    for (int rep = 0; rep < kReps; ++rep) {
        Cache cache(units, 0xE1);
        bench::StopWatch w;
        batched_stats = replay::replay_sequential_batched(cache, span);
        const double secs = w.seconds();
        if (rep == 0 || secs < batched_seconds) batched_seconds = secs;
    }
    {
        const stats::Throughput tp{batched_stats.ops, batched_seconds};
        table.add_row({"sequential", layout, "1", "sequential", kernel,
                       "batched", ConsoleTable::num(batched_seconds, 3),
                       ConsoleTable::num(tp.mops(), 2),
                       ConsoleTable::num(seq_seconds / batched_seconds, 2),
                       bench::pct(batched_stats.hit_rate())});
        json.push_back({"sequential", layout, 0, "sequential", kernel,
                        "batched", batched_seconds, tp.mops(),
                        batched_stats.ops, batched_stats.hits,
                        batched_stats.misses, batched_stats.evictions});
        if (!(batched_stats == seq_stats)) {
            std::fprintf(stderr,
                         "layout %s: batched stats DIVERGED (BUG)\n", layout);
        }
    }

    bool all_identical = true;
    const std::size_t hw = bench::usable_hardware_threads();
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
        if (workers > 1 && hw <= 1) continue;  // see function comment
        replay::ShardedConfig cfg;
        cfg.shards = workers;
        double best = 0.0;
        replay::ShardedReport last;
        for (int rep = 0; rep < kReps; ++rep) {
            Cache cache(units, 0xE1);
            bench::StopWatch w;
            last = replay::replay_sharded(cache, span, cfg);
            const double secs = w.seconds();
            if (rep == 0 || secs < best) best = secs;
            all_identical = all_identical && last.stats == seq_stats;
        }
        const stats::Throughput tp{last.stats.ops, best};
        const char* mode = last.threaded ? "threaded" : "inline";
        table.add_row({"sharded", layout, std::to_string(last.shards), mode,
                       kernel, "batched", ConsoleTable::num(best, 3),
                       ConsoleTable::num(tp.mops(), 2),
                       ConsoleTable::num(seq_seconds / best, 2),
                       bench::pct(last.stats.hit_rate())});
        json.push_back({"sharded", layout, last.shards, mode, kernel,
                        "batched", best, tp.mops(), last.stats.ops,
                        last.stats.hits, last.stats.misses,
                        last.stats.evictions});
    }
    if (hw <= 1) {
        std::printf("layout %s: 1 usable hardware thread — multi-worker "
                    "sharded sweep skipped\n",
                    layout);
    }

    if (!all_identical) {
        std::fprintf(stderr, "layout %s: sharded stats DIVERGED (BUG)\n",
                     layout);
    }
    *stats_out = seq_stats;
    return seq_seconds;
}

/// Scan-kernel head-to-head on the SoA layout: forced scalar vs the
/// dispatched SIMD kernel, each via the per-op and the batched sequential
/// path.  All four cells replay the same trace; stats must be identical
/// (the kernels are bit-equivalent — only the wall time may move).
template <typename Cache>
void run_kernel_series(ReplaySpan span, std::size_t units,
                       ConsoleTable& table,
                       std::vector<bench::ReplayJsonSeries>& json) {
    const char* layout = Cache::storage_type::layout_name();
    constexpr int kReps = 3;

    replay::ReplayStats first_stats;
    bool have_first = false;
    bool identical = true;
    for (const bool force_scalar : {true, false}) {
        if (force_scalar &&
            !core::simd::set_kernel_override(core::simd::ScanKernel::kScalar))
            continue;
        if (!force_scalar) core::simd::clear_kernel_override();
        const char* kernel = active_kernel_name();
        for (const bool batched : {false, true}) {
            double best = 0.0;
            replay::ReplayStats s;
            for (int rep = 0; rep < kReps; ++rep) {
                Cache cache(units, 0xE1);
                bench::StopWatch w;
                s = batched ? replay::replay_sequential_batched(cache, span)
                            : replay::replay_sequential(cache, span);
                const double secs = w.seconds();
                if (rep == 0 || secs < best) best = secs;
            }
            if (!have_first) {
                first_stats = s;
                have_first = true;
            }
            identical = identical && s == first_stats;
            const stats::Throughput tp{s.ops, best};
            const char* path = batched ? "batched" : "per_op";
            table.add_row({"kernel", layout, "1", "sequential", kernel, path,
                           ConsoleTable::num(best, 3),
                           ConsoleTable::num(tp.mops(), 2), "-",
                           bench::pct(s.hit_rate())});
            json.push_back({"kernel", layout, 0, "sequential", kernel, path,
                            best, tp.mops(), s.ops, s.hits, s.misses,
                            s.evictions});
        }
    }
    core::simd::clear_kernel_override();
    std::printf("kernel series (%s layout): scalar vs %s stats %s\n", layout,
                core::simd::kernel_name(core::simd::dispatched_kernel()),
                identical ? "IDENTICAL" : "DIVERGED (BUG)");
}

/// Worker-pinning head-to-head: forced-threaded sharded replay with
/// pin_workers off vs on.  On a multi-core box this prices what pinning
/// buys (first-touch locality surviving migration); with one usable CPU it
/// degenerates to the same core either way and the delta is noise — the
/// rows stay labeled with the real thread count so they read correctly.
template <typename Cache>
void run_pinning_series(ReplaySpan span, std::size_t units,
                        ConsoleTable& table,
                        std::vector<bench::ReplayJsonSeries>& json) {
    const char* layout = Cache::storage_type::layout_name();
    const char* kernel = active_kernel_name();
    constexpr int kReps = 3;

    replay::ShardedConfig cfg;
    cfg.shards = 4;
    cfg.mode = replay::Mode::kThreaded;

    double off_seconds = 0.0;
    for (const bool pin : {false, true}) {
        cfg.pin_workers = pin;
        double best = 0.0;
        replay::ShardedReport rep_out;
        for (int rep = 0; rep < kReps; ++rep) {
            Cache cache(units, 0xE1);
            bench::StopWatch w;
            rep_out = replay::replay_sharded(cache, span, cfg);
            const double secs = w.seconds();
            if (rep == 0 || secs < best) best = secs;
        }
        if (!pin) off_seconds = best;
        const stats::Throughput tp{rep_out.stats.ops, best};
        const char* mode = pin ? "pin_on" : "pin_off";
        table.add_row({"pinning", layout, std::to_string(cfg.shards), mode,
                       kernel, "batched", ConsoleTable::num(best, 3),
                       ConsoleTable::num(tp.mops(), 2),
                       ConsoleTable::num(off_seconds / best, 2),
                       bench::pct(rep_out.stats.hit_rate())});
        json.push_back({"pinning", layout, cfg.shards, mode, kernel,
                        "batched", best, tp.mops(), rep_out.stats.ops,
                        rep_out.stats.hits, rep_out.stats.misses,
                        rep_out.stats.evictions});
        if (pin) {
            std::printf("pinning (%s layout, %zu shards, %zu usable cpus): "
                        "%zu/%zu workers pinned\n",
                        layout, cfg.shards, bench::usable_hardware_threads(),
                        rep_out.pinned_workers, rep_out.shards);
        }
    }
}

/// Integrity-scrubber overhead: sequential replay with the scrubber off vs
/// on a 64k-op cadence, same trace and units as the main series.  The stats
/// must be identical (a clean cache scrubs to zero findings); the wall-time
/// delta is the price of periodically revalidating every meta word.
template <typename Cache>
void run_scrubber_series(ReplaySpan span, std::size_t units,
                         ConsoleTable& table,
                         std::vector<bench::ReplayJsonSeries>& json) {
    const char* layout = Cache::storage_type::layout_name();
    constexpr int kReps = 3;
    constexpr std::uint64_t kScrubEvery = 1u << 16;

    double off_seconds = 0.0;
    replay::ReplayStats off_stats;
    for (int rep = 0; rep < kReps; ++rep) {
        Cache cache(units, 0xE1);
        bench::StopWatch w;
        off_stats = replay::replay_sequential(cache, span);
        const double secs = w.seconds();
        if (rep == 0 || secs < off_seconds) off_seconds = secs;
    }

    double on_seconds = 0.0;
    replay::ScrubbedReplay on_result;
    for (int rep = 0; rep < kReps; ++rep) {
        Cache cache(units, 0xE1);
        bench::StopWatch w;
        on_result =
            replay::replay_sequential_scrubbed(cache, span, kScrubEvery);
        const double secs = w.seconds();
        if (rep == 0 || secs < on_seconds) on_seconds = secs;
    }

    for (const auto& [mode, secs, s] :
         {std::tuple{"scrub_off", off_seconds, off_stats},
          std::tuple{"scrub_on", on_seconds, on_result.stats}}) {
        const stats::Throughput tp{s.ops, secs};
        table.add_row({"scrubber", layout, "1", mode, active_kernel_name(),
                       "per_op", ConsoleTable::num(secs, 3),
                       ConsoleTable::num(tp.mops(), 2),
                       ConsoleTable::num(off_seconds / secs, 2),
                       bench::pct(s.hit_rate())});
        json.push_back({"scrubber", layout, 0, mode, active_kernel_name(),
                        "per_op", secs, tp.mops(), s.ops, s.hits, s.misses,
                        s.evictions});
    }

    std::printf("scrubber (every %llu ops, %s layout): %.2f%% overhead, "
                "%llu units scanned, %llu corrupt, stats %s\n",
                static_cast<unsigned long long>(kScrubEvery), layout,
                (on_seconds / off_seconds - 1.0) * 100.0,
                static_cast<unsigned long long>(on_result.scrub.scanned),
                static_cast<unsigned long long>(on_result.scrub.corrupt),
                on_result.stats == off_stats ? "IDENTICAL"
                                             : "DIVERGED (BUG)");
}

/// Checkpoint-quiesce overhead: threaded sharded replay with checkpointing
/// off vs on (snapshot every kEveryBatches delivered batches).  Each emit
/// quiesces all workers at a batch boundary and copies the full plane image
/// plus per-shard stats; the wall-time delta prices that pause, and the
/// stats must stay bit-identical to the uncheckpointed run.
template <typename Cache>
void run_checkpoint_series(ReplaySpan span, std::size_t units,
                           ConsoleTable& table,
                           std::vector<bench::ReplayJsonSeries>& json) {
    const char* layout = Cache::storage_type::layout_name();
    constexpr int kReps = 3;
    constexpr std::uint64_t kEveryBatches = 256;

    replay::ShardedConfig cfg;
    cfg.shards = 4;

    double off_seconds = 0.0;
    replay::ShardedReport off_rep;
    for (int rep = 0; rep < kReps; ++rep) {
        Cache cache(units, 0xE1);
        bench::StopWatch w;
        off_rep = replay::replay_sharded(cache, span, cfg);
        const double secs = w.seconds();
        if (rep == 0 || secs < off_seconds) off_seconds = secs;
    }

    double on_seconds = 0.0;
    replay::ShardedReport on_rep;
    std::size_t emitted = 0;
    for (int rep = 0; rep < kReps; ++rep) {
        Cache cache(units, 0xE1);
        emitted = 0;
        bench::StopWatch w;
        on_rep = replay::replay_sharded_checkpointed(
            cache, span, cfg, kEveryBatches,
            [&](replay::ShardedCheckpoint&& cp) {
                ++emitted;
                benchmark::DoNotOptimize(cp.base.planes.data());
            });
        const double secs = w.seconds();
        if (rep == 0 || secs < on_seconds) on_seconds = secs;
    }

    for (const auto& [mode, secs, s] :
         {std::tuple{"ckpt_off", off_seconds, off_rep.stats},
          std::tuple{"ckpt_on", on_seconds, on_rep.stats}}) {
        const stats::Throughput tp{s.ops, secs};
        table.add_row({"checkpoint", layout, std::to_string(cfg.shards),
                       mode, active_kernel_name(), "batched",
                       ConsoleTable::num(secs, 3),
                       ConsoleTable::num(tp.mops(), 2),
                       ConsoleTable::num(off_seconds / secs, 2),
                       bench::pct(s.hit_rate())});
        json.push_back({"checkpoint", layout, cfg.shards, mode,
                        active_kernel_name(), "batched", secs, tp.mops(),
                        s.ops, s.hits, s.misses, s.evictions});
    }

    std::printf("checkpoint (every %llu batches, %s layout, %zu shards): "
                "%zu snapshots, %.2f%% overhead, stats %s\n",
                static_cast<unsigned long long>(kEveryBatches), layout,
                cfg.shards, emitted,
                (on_seconds / off_seconds - 1.0) * 100.0,
                on_rep.stats == off_rep.stats ? "IDENTICAL"
                                              : "DIVERGED (BUG)");
}

/// Observability overhead: the same sharded replay with no Registry (the
/// default — obs entirely compiled around via null-pointer guards) vs with
/// a live Registry attached (batch-apply timing, per-shard depth gauges,
/// degradation counters).  The acceptance bar is twofold: obs-off is the
/// pre-obs engine bit for bit, and obs-on prices its fetch_adds explicitly
/// in the committed JSON.
template <typename Cache>
void run_obs_series(ReplaySpan span, std::size_t units, ConsoleTable& table,
                    std::vector<bench::ReplayJsonSeries>& json) {
    const char* layout = Cache::storage_type::layout_name();
    constexpr int kReps = 3;

    replay::ShardedConfig cfg;
    cfg.shards = 4;

    double off_seconds = 0.0;
    replay::ShardedReport off_rep;
    for (int rep = 0; rep < kReps; ++rep) {
        Cache cache(units, 0xF2);
        bench::StopWatch w;
        off_rep = replay::replay_sharded(cache, span, cfg);
        const double secs = w.seconds();
        if (rep == 0 || secs < off_seconds) off_seconds = secs;
    }

    double on_seconds = 0.0;
    replay::ShardedReport on_rep;
    obs::Registry reg;
    cfg.metrics = &reg;
    for (int rep = 0; rep < kReps; ++rep) {
        Cache cache(units, 0xF2);
        bench::StopWatch w;
        on_rep = replay::replay_sharded(cache, span, cfg);
        const double secs = w.seconds();
        if (rep == 0 || secs < on_seconds) on_seconds = secs;
    }

    for (const auto& [mode, secs, s] :
         {std::tuple{"obs_off", off_seconds, off_rep.stats},
          std::tuple{"obs_on", on_seconds, on_rep.stats}}) {
        const stats::Throughput tp{s.ops, secs};
        table.add_row({"obs", layout, std::to_string(cfg.shards), mode,
                       active_kernel_name(), "batched",
                       ConsoleTable::num(secs, 3),
                       ConsoleTable::num(tp.mops(), 2),
                       ConsoleTable::num(off_seconds / secs, 2),
                       bench::pct(s.hit_rate())});
        json.push_back({"obs", layout, cfg.shards, mode,
                        active_kernel_name(), "batched", secs, tp.mops(),
                        s.ops, s.hits, s.misses, s.evictions});
    }

    const auto snap = reg.snapshot();
    const std::uint64_t* batches = snap.counter("replay_batches_applied");
    std::printf("obs (%s layout, %zu shards): %.2f%% overhead, "
                "%llu batches instrumented, stats %s\n",
                layout, cfg.shards,
                (on_seconds / off_seconds - 1.0) * 100.0,
                static_cast<unsigned long long>(batches ? *batches : 0),
                on_rep.stats == off_rep.stats ? "IDENTICAL"
                                              : "DIVERGED (BUG)");
}

/// Trace-source axis: the same replay pulled through each TraceSource — the
/// in-memory vector, the mmap'd file, the chunked background reader — via
/// the streaming engine, sequential and 4-way threaded.  Prices the
/// ingestion paths against each other; the stats must be bit-identical in
/// every cell (the sources yield the same record stream by contract), so
/// only wall time may move.
template <typename Cache>
void run_source_series(const std::vector<PacketRecord>& trace,
                       const std::string& trace_path, std::size_t units,
                       ConsoleTable& table,
                       std::vector<bench::ReplayJsonSeries>& json) {
    const char* layout = Cache::storage_type::layout_name();
    const char* kernel = active_kernel_name();
    constexpr int kReps = 3;

    const auto open_source =
        [&](const char* which) -> std::unique_ptr<trace::TraceSource> {
        if (std::strcmp(which, "vector") == 0) {
            return std::make_unique<trace::VectorSource>(
                std::span<const PacketRecord>(trace));
        }
        if (std::strcmp(which, "mmap") == 0) {
            return trace::MmapSource::open(trace_path).value();
        }
        trace::ChunkedSourceOptions opts;
        opts.chunk_records = 1u << 16;
        return trace::ChunkedFileSource::open(trace_path, opts).value();
    };

    replay::ShardedConfig cfg;
    cfg.shards = 4;
    cfg.mode = replay::Mode::kThreaded;

    replay::ReplayStats first_stats;
    bool have_first = false;
    bool identical = true;
    double vector_seq_seconds = 0.0;
    for (const char* source : {"vector", "mmap", "chunked"}) {
        double seq_best = 0.0;
        replay::ReplayStats s;
        for (int rep = 0; rep < kReps; ++rep) {
            auto src = open_source(source);
            auto stream = replay::packet_op_source(*src);
            Cache cache(units, 0xE1);
            bench::StopWatch w;
            s = replay::replay_sequential_stream(cache, stream).value();
            const double secs = w.seconds();
            if (rep == 0 || secs < seq_best) seq_best = secs;
        }
        if (!have_first) {
            first_stats = s;
            have_first = true;
            vector_seq_seconds = seq_best;
        }
        identical = identical && s == first_stats;
        {
            const stats::Throughput tp{s.ops, seq_best};
            table.add_row({"trace_source", layout, "1", source, kernel,
                           "seq_stream", ConsoleTable::num(seq_best, 3),
                           ConsoleTable::num(tp.mops(), 2),
                           ConsoleTable::num(vector_seq_seconds / seq_best, 2),
                           bench::pct(s.hit_rate())});
            json.push_back({"trace_source", layout, 0, source, kernel,
                            "seq_stream", seq_best, tp.mops(), s.ops, s.hits,
                            s.misses, s.evictions});
        }

        double shard_best = 0.0;
        replay::ShardedReport rep_out;
        for (int rep = 0; rep < kReps; ++rep) {
            auto src = open_source(source);
            auto stream = replay::packet_op_source(*src);
            Cache cache(units, 0xE1);
            bench::StopWatch w;
            rep_out =
                replay::replay_sharded_stream(cache, stream, cfg).value();
            const double secs = w.seconds();
            if (rep == 0 || secs < shard_best) shard_best = secs;
        }
        identical = identical && rep_out.stats == first_stats;
        {
            const stats::Throughput tp{rep_out.stats.ops, shard_best};
            table.add_row({"trace_source", layout, std::to_string(cfg.shards),
                           source, kernel, "shard_stream",
                           ConsoleTable::num(shard_best, 3),
                           ConsoleTable::num(tp.mops(), 2),
                           ConsoleTable::num(vector_seq_seconds / shard_best,
                                             2),
                           bench::pct(rep_out.stats.hit_rate())});
            json.push_back({"trace_source", layout, cfg.shards, source,
                            kernel, "shard_stream", shard_best, tp.mops(),
                            rep_out.stats.ops, rep_out.stats.hits,
                            rep_out.stats.misses, rep_out.stats.evictions});
        }
    }
    std::printf("trace sources (%s layout): vector vs mmap vs chunked stats "
                "%s\n",
                layout, identical ? "IDENTICAL" : "DIVERGED (BUG)");
}

void run_replay_throughput() {
    using Unit = core::P4lru<FlowKey, std::uint32_t, 3>;
    using SoaCache = core::ParallelCache<Unit, FlowKey, std::uint32_t>;
    using AosCache = core::AosParallelCache<Unit, FlowKey, std::uint32_t>;
    static_assert(std::is_same_v<SoaCache::storage_type,
                                 core::SoaSlab<FlowKey, std::uint32_t, 3>>);

    const std::size_t units = bench::scaled(1u << 16);
    const auto trace = bench::make_trace(60, 42);
    const auto ops = replay::ops_from_packets(trace);
    const ReplaySpan span(ops);

    std::vector<bench::ReplayJsonSeries> json;
    ConsoleTable table({"series", "layout", "workers", "mode", "kernel",
                        "path", "wall s", "Mops/s", "speedup", "hit %"});

    std::printf("scan kernel: %s dispatched (sse2=%d avx2=%d neon=%d), "
                "%zu usable hardware threads\n",
                core::simd::kernel_name(core::simd::dispatched_kernel()),
                core::simd::cpu_features().sse2,
                core::simd::cpu_features().avx2,
                core::simd::cpu_features().neon,
                bench::usable_hardware_threads());

    replay::ReplayStats aos_stats, soa_stats;
    const double aos_seconds =
        run_layout_series<AosCache>(span, units, table, json, &aos_stats);
    const double soa_seconds =
        run_layout_series<SoaCache>(span, units, table, json, &soa_stats);
    run_kernel_series<SoaCache>(span, units, table, json);
    run_pinning_series<SoaCache>(span, units, table, json);
    run_scrubber_series<SoaCache>(span, units, table, json);
    run_checkpoint_series<SoaCache>(span, units, table, json);
    run_obs_series<SoaCache>(span, units, table, json);
    {
        // The file-backed sources need the trace on disk in P4LRUTRC form.
        const std::string trace_path =
            (std::filesystem::temp_directory_path() / "p4lru_bench_trace.bin")
                .string();
        trace::write_trace(trace_path, trace);
        run_source_series<SoaCache>(trace, trace_path, units, table, json);
        std::error_code ec;
        std::filesystem::remove(trace_path, ec);
    }

    table.print("Replay throughput: AoS reference vs SoA slab, sequential "
                "vs sharded (" +
                std::to_string(span.size()) + " packets, " +
                std::to_string(units) + " units)");
    const bool layouts_identical = aos_stats == soa_stats;
    std::printf("aggregate hit/miss/eviction counts %s across layouts\n",
                layouts_identical ? "IDENTICAL" : "DIVERGED (BUG)");
    std::printf("single-thread soa/aos replay speedup: %.2fx\n",
                aos_seconds / soa_seconds);

    const char* path = std::getenv("P4LRU_BENCH_JSON");
    const std::string out = path ? path : "BENCH_micro_ops.json";
    if (bench::write_replay_json(out, span.size(), units, bench::scale(),
                                 json)) {
        std::printf("wrote %s\n", out.c_str());
    } else {
        std::fprintf(stderr, "failed to write %s\n", out.c_str());
    }
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    const char* skip = std::getenv("P4LRU_SKIP_GBENCH");
    if (!(skip && skip[0] == '1')) {
        benchmark::RunSpecifiedBenchmarks();
    }
    benchmark::Shutdown();
    run_replay_throughput();
    return 0;
}
