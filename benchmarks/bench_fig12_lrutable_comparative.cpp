// Figure 12 — LruTable comparative experiment (simulation, CAIDA_60
// rescaled to one second, Section 4.2.1).
//   (a) cache miss rate vs cache memory, policies: P4LRU3, Timeout (tuned),
//       Elastic, Coco (+ LRU_IDEAL reference)
//   (b) cache miss rate vs slow-path latency dT
#include <cstdio>

#include "bench_common.hpp"
#include "p4lru/systems/lrutable/lrutable.hpp"

using namespace p4lru;
using namespace p4lru::bench;
using namespace p4lru::systems::lrutable;

namespace {

using Factory = PolicyFactory<VirtualAddress, std::uint32_t>;

double miss_rate(const std::vector<PacketRecord>& trace, Factory::Ptr policy,
                 TimeNs dt) {
    LruTableConfig cfg;
    cfg.slow_path_delay = dt;
    LruTableSystem sys(std::move(policy), cfg);
    for (const auto& p : trace) sys.process(p);
    sys.finish();
    return sys.report().miss_rate;
}

/// The paper "meticulously adjusted" the timeout threshold; reproduce that
/// by trying several thresholds and keeping the best.
double tuned_timeout_miss(const std::vector<PacketRecord>& trace,
                          std::size_t entries, TimeNs dt) {
    double best = 1.0;
    for (const TimeNs t :
         {10 * kMillisecond, 30 * kMillisecond, 100 * kMillisecond,
          300 * kMillisecond}) {
        best = std::min(best,
                        miss_rate(trace, Factory::timeout(entries, 0xE1, t),
                                  dt));
    }
    return best;
}

}  // namespace

int main() {
    const auto trace = make_trace(60, 120);
    const TimeNs base_dt = 40 * kMicrosecond;
    const std::size_t base_entries = scaled(3 * (1u << 11));

    // --- (a) miss rate vs memory ------------------------------------------
    {
        ConsoleTable t({"entries", "P4LRU3 %", "Timeout %", "Elastic %",
                        "Coco %", "LRU_IDEAL %", "vs Coco", "vs Elastic",
                        "vs Timeout"});
        for (const double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
            const auto entries =
                static_cast<std::size_t>(base_entries * mult);
            const double p3 =
                miss_rate(trace, Factory::p4lru3(entries, 0xE1), base_dt);
            const double to = tuned_timeout_miss(trace, entries, base_dt);
            const double el =
                miss_rate(trace, Factory::elastic(entries, 0xE1), base_dt);
            const double co =
                miss_rate(trace, Factory::coco(entries, 0xE1), base_dt);
            const double id =
                miss_rate(trace, Factory::ideal(entries), base_dt);
            t.add_row({std::to_string(entries), pct(p3), pct(to), pct(el),
                       pct(co), pct(id), pct(1.0 - p3 / co),
                       pct(1.0 - p3 / el), pct(1.0 - p3 / to)});
        }
        t.print(
            "Figure 12(a): LruTable miss rate vs memory (reduction columns "
            "= paper's 'up to 26.8/20.8/12.7%')");
    }

    // --- (b) miss rate vs slow-path latency dT ----------------------------
    {
        ConsoleTable t({"dT us", "P4LRU3 %", "Timeout %", "Elastic %",
                        "Coco %", "LRU_IDEAL %"});
        for (const TimeNs dt :
             {10 * kMicrosecond, 40 * kMicrosecond, 160 * kMicrosecond,
              640 * kMicrosecond, 2560 * kMicrosecond}) {
            t.add_row(
                {std::to_string(dt / 1000),
                 pct(miss_rate(trace, Factory::p4lru3(base_entries, 0xE1),
                               dt)),
                 pct(tuned_timeout_miss(trace, base_entries, dt)),
                 pct(miss_rate(trace, Factory::elastic(base_entries, 0xE1),
                               dt)),
                 pct(miss_rate(trace, Factory::coco(base_entries, 0xE1),
                               dt)),
                 pct(miss_rate(trace, Factory::ideal(base_entries), dt))});
        }
        t.print("Figure 12(b): LruTable miss rate vs slow-path latency");
    }

    std::printf(
        "\nPaper shape: Coco ~ Elastic > Timeout > P4LRU3 ~ LRU_IDEAL; the\n"
        "P4LRU3 reductions peak at 26.8%% (vs Coco), 20.8%% (vs Elastic),\n"
        "12.7%% (vs Timeout) in (a) and 18.4/17.3/9.3%% in (b).\n");
    return 0;
}
