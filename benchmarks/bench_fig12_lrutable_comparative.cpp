// Figure 12 — LruTable comparative experiment (simulation, CAIDA_60
// rescaled to one second, Section 4.2.1).
//   (a) cache miss rate vs cache memory, policies: P4LRU3, Timeout (tuned),
//       Elastic, Coco (+ LRU_IDEAL reference)
//   (b) cache miss rate vs slow-path latency dT
//
// Every (row, policy) cell is an independent deterministic replay, so the
// cells are evaluated through bench::run_series — concurrently when the
// machine has spare cores — and each figure prints a per-series timing
// table (wall time, Mops/s) alongside the paper-style results.
#include <cstdio>

#include "bench_common.hpp"
#include "p4lru/systems/lrutable/lrutable.hpp"

using namespace p4lru;
using namespace p4lru::bench;
using namespace p4lru::systems::lrutable;

namespace {

using Factory = PolicyFactory<VirtualAddress, std::uint32_t>;

double miss_rate(const std::vector<PacketRecord>& trace, Factory::Ptr policy,
                 TimeNs dt) {
    LruTableConfig cfg;
    cfg.slow_path_delay = dt;
    LruTableSystem sys(std::move(policy), cfg);
    for (const auto& p : trace) sys.process(p);
    sys.finish();
    return sys.report().miss_rate;
}

/// The paper "meticulously adjusted" the timeout threshold; reproduce that
/// by trying several thresholds and keeping the best.
double tuned_timeout_miss(const std::vector<PacketRecord>& trace,
                          std::size_t entries, TimeNs dt) {
    double best = 1.0;
    for (const TimeNs t :
         {10 * kMillisecond, 30 * kMillisecond, 100 * kMillisecond,
          300 * kMillisecond}) {
        best = std::min(best,
                        miss_rate(trace, Factory::timeout(entries, 0xE1, t),
                                  dt));
    }
    return best;
}

/// The five policy columns of one figure row, as independent jobs.
std::vector<SeriesJob> row_jobs(const std::vector<PacketRecord>& trace,
                                const std::string& row_label,
                                std::size_t entries, TimeNs dt) {
    const auto n = static_cast<std::uint64_t>(trace.size());
    return {
        {row_label + "/P4LRU3", n,
         [&trace, entries, dt] {
             return miss_rate(trace, Factory::p4lru3(entries, 0xE1), dt);
         }},
        {row_label + "/Timeout", 4 * n,  // 4 tuning sweeps
         [&trace, entries, dt] {
             return tuned_timeout_miss(trace, entries, dt);
         }},
        {row_label + "/Elastic", n,
         [&trace, entries, dt] {
             return miss_rate(trace, Factory::elastic(entries, 0xE1), dt);
         }},
        {row_label + "/Coco", n,
         [&trace, entries, dt] {
             return miss_rate(trace, Factory::coco(entries, 0xE1), dt);
         }},
        {row_label + "/LRU_IDEAL", n,
         [&trace, entries, dt] {
             return miss_rate(trace, Factory::ideal(entries), dt);
         }},
    };
}

}  // namespace

int main() {
    const auto trace = make_trace(60, 120);
    const TimeNs base_dt = 40 * kMicrosecond;
    const std::size_t base_entries = scaled(3 * (1u << 11));

    // --- (a) miss rate vs memory ------------------------------------------
    {
        const std::vector<double> mults = {0.25, 0.5, 1.0, 2.0, 4.0};
        std::vector<SeriesJob> jobs;
        std::vector<std::size_t> row_entries;
        for (const double mult : mults) {
            const auto entries =
                static_cast<std::size_t>(base_entries * mult);
            row_entries.push_back(entries);
            const auto row = row_jobs(trace, std::to_string(entries),
                                      entries, base_dt);
            jobs.insert(jobs.end(), row.begin(), row.end());
        }
        TimingReport timing;
        const auto res = run_series(jobs, &timing);

        ConsoleTable t({"entries", "P4LRU3 %", "Timeout %", "Elastic %",
                        "Coco %", "LRU_IDEAL %", "vs Coco", "vs Elastic",
                        "vs Timeout"});
        for (std::size_t r = 0; r < mults.size(); ++r) {
            const double p3 = res[r * 5 + 0].value;
            const double to = res[r * 5 + 1].value;
            const double el = res[r * 5 + 2].value;
            const double co = res[r * 5 + 3].value;
            const double id = res[r * 5 + 4].value;
            t.add_row({std::to_string(row_entries[r]), pct(p3), pct(to),
                       pct(el), pct(co), pct(id), pct(1.0 - p3 / co),
                       pct(1.0 - p3 / el), pct(1.0 - p3 / to)});
        }
        t.print(
            "Figure 12(a): LruTable miss rate vs memory (reduction columns "
            "= paper's 'up to 26.8/20.8/12.7%')");
        timing.print("Figure 12(a): per-series replay timings");
    }

    // --- (b) miss rate vs slow-path latency dT ----------------------------
    {
        const std::vector<TimeNs> dts = {10 * kMicrosecond, 40 * kMicrosecond,
                                         160 * kMicrosecond,
                                         640 * kMicrosecond,
                                         2560 * kMicrosecond};
        std::vector<SeriesJob> jobs;
        for (const TimeNs dt : dts) {
            const auto row = row_jobs(trace,
                                      "dT" + std::to_string(dt / 1000) + "us",
                                      base_entries, dt);
            jobs.insert(jobs.end(), row.begin(), row.end());
        }
        TimingReport timing;
        const auto res = run_series(jobs, &timing);

        ConsoleTable t({"dT us", "P4LRU3 %", "Timeout %", "Elastic %",
                        "Coco %", "LRU_IDEAL %"});
        for (std::size_t r = 0; r < dts.size(); ++r) {
            t.add_row({std::to_string(dts[r] / 1000),
                       pct(res[r * 5 + 0].value), pct(res[r * 5 + 1].value),
                       pct(res[r * 5 + 2].value), pct(res[r * 5 + 3].value),
                       pct(res[r * 5 + 4].value)});
        }
        t.print("Figure 12(b): LruTable miss rate vs slow-path latency");
        timing.print("Figure 12(b): per-series replay timings");
    }

    std::printf(
        "\nPaper shape: Coco ~ Elastic > Timeout > P4LRU3 ~ LRU_IDEAL; the\n"
        "P4LRU3 reductions peak at 26.8%% (vs Coco), 20.8%% (vs Elastic),\n"
        "12.7%% (vs Timeout) in (a) and 18.4/17.3/9.3%% in (b).\n");
    return 0;
}
