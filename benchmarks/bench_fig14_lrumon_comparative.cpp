// Figure 14 — LruMon comparative experiment (Section 4.2.1): elephant-packet
// cache miss rate under each replacement policy (write-cache semantics:
// hits accumulate byte counts).
//   (a) miss rate vs cache memory
//   (b) miss rate vs filter threshold
//
// Cells are independent deterministic replays, evaluated via
// bench::run_series (parallel on multicore machines) with per-series
// timings printed after each figure table.
#include <cstdio>

#include "bench_common.hpp"
#include "p4lru/systems/lrumon/lrumon.hpp"

using namespace p4lru;
using namespace p4lru::bench;
using namespace p4lru::systems::lrumon;

namespace {

using Factory = PolicyFactory<std::uint32_t, FlowLen, core::AddMerge>;

double miss_rate(const std::vector<PacketRecord>& trace, Factory::Ptr policy,
                 std::uint32_t threshold) {
    FilterConfig fcfg;
    fcfg.reset_period = 10 * kMillisecond;
    LruMonConfig cfg;
    cfg.threshold = threshold;
    cfg.track_ground_truth = false;
    LruMonSystem sys(make_filter(FilterKind::kTower, fcfg), std::move(policy),
                     cfg);
    for (const auto& p : trace) sys.process(p);
    sys.finish();
    return sys.report().cache_miss_rate;
}

double tuned_timeout_miss(const std::vector<PacketRecord>& trace,
                          std::size_t entries, std::uint32_t threshold) {
    double best = 1.0;
    for (const TimeNs t :
         {3 * kMillisecond, 10 * kMillisecond, 30 * kMillisecond,
          100 * kMillisecond}) {
        best = std::min(
            best,
            miss_rate(trace, Factory::timeout(entries, 0xA7, t), threshold));
    }
    return best;
}

std::vector<SeriesJob> row_jobs(const std::vector<PacketRecord>& trace,
                                const std::string& row_label,
                                std::size_t entries,
                                std::uint32_t threshold) {
    const auto n = static_cast<std::uint64_t>(trace.size());
    return {
        {row_label + "/P4LRU3", n,
         [&trace, entries, threshold] {
             return miss_rate(trace, Factory::p4lru3(entries, 0xA7),
                              threshold);
         }},
        {row_label + "/Timeout", 4 * n,
         [&trace, entries, threshold] {
             return tuned_timeout_miss(trace, entries, threshold);
         }},
        {row_label + "/Elastic", n,
         [&trace, entries, threshold] {
             return miss_rate(trace, Factory::elastic(entries, 0xA7),
                              threshold);
         }},
        {row_label + "/Coco", n,
         [&trace, entries, threshold] {
             return miss_rate(trace, Factory::coco(entries, 0xA7),
                              threshold);
         }},
        {row_label + "/LRU_IDEAL", n,
         [&trace, entries, threshold] {
             return miss_rate(trace, Factory::ideal(entries), threshold);
         }},
    };
}

}  // namespace

int main() {
    const auto trace = make_trace(60, 140);
    const std::size_t base_entries = scaled(3 * (1u << 8));

    // --- (a) miss rate vs memory ------------------------------------------
    {
        const std::vector<double> mults = {0.5, 1.0, 2.0, 4.0, 8.0};
        std::vector<SeriesJob> jobs;
        std::vector<std::size_t> row_entries;
        for (const double mult : mults) {
            const auto entries =
                static_cast<std::size_t>(base_entries * mult);
            row_entries.push_back(entries);
            const auto row =
                row_jobs(trace, std::to_string(entries), entries, 1500);
            jobs.insert(jobs.end(), row.begin(), row.end());
        }
        TimingReport timing;
        const auto res = run_series(jobs, &timing);

        ConsoleTable t({"entries", "P4LRU3 %", "Timeout %", "Elastic %",
                        "Coco %", "LRU_IDEAL %"});
        for (std::size_t r = 0; r < mults.size(); ++r) {
            t.add_row({std::to_string(row_entries[r]),
                       pct(res[r * 5 + 0].value), pct(res[r * 5 + 1].value),
                       pct(res[r * 5 + 2].value), pct(res[r * 5 + 3].value),
                       pct(res[r * 5 + 4].value)});
        }
        t.print("Figure 14(a): LruMon cache miss rate vs memory");
        timing.print("Figure 14(a): per-series replay timings");
    }

    // --- (b) miss rate vs filter threshold --------------------------------
    {
        const std::vector<std::uint32_t> thresholds = {500u, 1000u, 1500u,
                                                       3000u, 6000u};
        std::vector<SeriesJob> jobs;
        for (const std::uint32_t thr : thresholds) {
            const auto row = row_jobs(trace, "thr" + std::to_string(thr),
                                      base_entries, thr);
            jobs.insert(jobs.end(), row.begin(), row.end());
        }
        TimingReport timing;
        const auto res = run_series(jobs, &timing);

        ConsoleTable t({"threshold B", "P4LRU3 %", "Timeout %", "Elastic %",
                        "Coco %", "LRU_IDEAL %"});
        for (std::size_t r = 0; r < thresholds.size(); ++r) {
            t.add_row({std::to_string(thresholds[r]),
                       pct(res[r * 5 + 0].value), pct(res[r * 5 + 1].value),
                       pct(res[r * 5 + 2].value), pct(res[r * 5 + 3].value),
                       pct(res[r * 5 + 4].value)});
        }
        t.print("Figure 14(b): LruMon cache miss rate vs filter threshold");
        timing.print("Figure 14(b): per-series replay timings");
    }

    std::printf(
        "\nPaper shape: Coco ~ Elastic > Timeout > P4LRU3; reductions up to\n"
        "35.2/31.7/8.0%% in (a) and 36.0/31.2/8.1%% in (b).\n");
    return 0;
}
