// Figure 14 — LruMon comparative experiment (Section 4.2.1): elephant-packet
// cache miss rate under each replacement policy (write-cache semantics:
// hits accumulate byte counts).
//   (a) miss rate vs cache memory
//   (b) miss rate vs filter threshold
#include <cstdio>

#include "bench_common.hpp"
#include "p4lru/systems/lrumon/lrumon.hpp"

using namespace p4lru;
using namespace p4lru::bench;
using namespace p4lru::systems::lrumon;

namespace {

using Factory = PolicyFactory<std::uint32_t, FlowLen, core::AddMerge>;

double miss_rate(const std::vector<PacketRecord>& trace, Factory::Ptr policy,
                 std::uint32_t threshold) {
    FilterConfig fcfg;
    fcfg.reset_period = 10 * kMillisecond;
    LruMonConfig cfg;
    cfg.threshold = threshold;
    cfg.track_ground_truth = false;
    LruMonSystem sys(make_filter(FilterKind::kTower, fcfg), std::move(policy),
                     cfg);
    for (const auto& p : trace) sys.process(p);
    sys.finish();
    return sys.report().cache_miss_rate;
}

double tuned_timeout_miss(const std::vector<PacketRecord>& trace,
                          std::size_t entries, std::uint32_t threshold) {
    double best = 1.0;
    for (const TimeNs t :
         {3 * kMillisecond, 10 * kMillisecond, 30 * kMillisecond,
          100 * kMillisecond}) {
        best = std::min(
            best,
            miss_rate(trace, Factory::timeout(entries, 0xA7, t), threshold));
    }
    return best;
}

}  // namespace

int main() {
    const auto trace = make_trace(60, 140);
    const std::size_t base_entries = scaled(3 * (1u << 8));

    // --- (a) miss rate vs memory ------------------------------------------
    {
        ConsoleTable t({"entries", "P4LRU3 %", "Timeout %", "Elastic %",
                        "Coco %", "LRU_IDEAL %"});
        for (const double mult : {0.5, 1.0, 2.0, 4.0, 8.0}) {
            const auto entries =
                static_cast<std::size_t>(base_entries * mult);
            t.add_row(
                {std::to_string(entries),
                 pct(miss_rate(trace, Factory::p4lru3(entries, 0xA7), 1500)),
                 pct(tuned_timeout_miss(trace, entries, 1500)),
                 pct(miss_rate(trace, Factory::elastic(entries, 0xA7),
                               1500)),
                 pct(miss_rate(trace, Factory::coco(entries, 0xA7), 1500)),
                 pct(miss_rate(trace, Factory::ideal(entries), 1500))});
        }
        t.print("Figure 14(a): LruMon cache miss rate vs memory");
    }

    // --- (b) miss rate vs filter threshold --------------------------------
    {
        ConsoleTable t({"threshold B", "P4LRU3 %", "Timeout %", "Elastic %",
                        "Coco %", "LRU_IDEAL %"});
        for (const std::uint32_t thr : {500u, 1000u, 1500u, 3000u, 6000u}) {
            t.add_row(
                {std::to_string(thr),
                 pct(miss_rate(trace, Factory::p4lru3(base_entries, 0xA7),
                               thr)),
                 pct(tuned_timeout_miss(trace, base_entries, thr)),
                 pct(miss_rate(trace, Factory::elastic(base_entries, 0xA7),
                               thr)),
                 pct(miss_rate(trace, Factory::coco(base_entries, 0xA7),
                               thr)),
                 pct(miss_rate(trace, Factory::ideal(base_entries), thr))});
        }
        t.print("Figure 14(b): LruMon cache miss rate vs filter threshold");
    }

    std::printf(
        "\nPaper shape: Coco ~ Elastic > Timeout > P4LRU3; reductions up to\n"
        "35.2/31.7/8.0%% in (a) and 36.0/31.2/8.1%% in (b).\n");
    return 0;
}
