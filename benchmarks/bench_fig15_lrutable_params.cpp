// Figure 15 — LruTable parameter experiment (Section 4.2.2): how close the
// deployable P4LRU variants come to the ideal LRU.
//   (a) miss rate vs memory        (b) LRU similarity vs memory
//   (c) miss rate vs dT            (d) LRU similarity vs dT
// Series: LRU_IDEAL, P4LRU1 (hash), P4LRU2, P4LRU3.
#include <cstdio>

#include "bench_common.hpp"
#include "p4lru/systems/lrutable/lrutable.hpp"

using namespace p4lru;
using namespace p4lru::bench;
using namespace p4lru::systems::lrutable;

namespace {

using Factory = PolicyFactory<VirtualAddress, std::uint32_t>;

Factory::Ptr p4lru4(std::size_t entries, std::uint32_t seed) {
    return std::make_unique<cache::P4lru4ArrayPolicy<VirtualAddress,
                                                     std::uint32_t>>(
        entries, seed, "P4LRU4");
}

struct Outcome {
    double miss = 0;
    double similarity = 0;
};

Outcome run(const std::vector<PacketRecord>& trace, Factory::Ptr policy,
            TimeNs dt) {
    LruTableConfig cfg;
    cfg.slow_path_delay = dt;
    cfg.track_similarity = true;
    cfg.similarity_max_accesses = 3 * trace.size() + 16;
    LruTableSystem sys(std::move(policy), cfg);
    for (const auto& p : trace) sys.process(p);
    sys.finish();
    const auto r = sys.report();
    return {r.miss_rate, r.similarity};
}

}  // namespace

int main() {
    const auto trace = make_trace(60, 150);
    const TimeNs base_dt = 40 * kMicrosecond;
    const std::size_t base_entries = scaled(3 * (1u << 11));

    // --- (a)+(b): sweep memory -------------------------------------------
    {
        ConsoleTable a({"entries", "LRU_IDEAL %", "P4LRU1 %", "P4LRU2 %",
                        "P4LRU3 %", "P4LRU4 %"});
        ConsoleTable b({"entries", "LRU_IDEAL sim", "P4LRU1 sim",
                        "P4LRU2 sim", "P4LRU3 sim", "P4LRU4 sim"});
        for (const double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
            const auto entries =
                static_cast<std::size_t>(base_entries * mult);
            const auto id = run(trace, Factory::ideal(entries), base_dt);
            const auto p1 = run(trace, Factory::p4lru1(entries, 0xB5), base_dt);
            const auto p2 = run(trace, Factory::p4lru2(entries, 0xB5), base_dt);
            const auto p3 = run(trace, Factory::p4lru3(entries, 0xB5), base_dt);
            const auto p4 = run(trace, p4lru4(entries, 0xB5), base_dt);
            a.add_row({std::to_string(entries), pct(id.miss), pct(p1.miss),
                       pct(p2.miss), pct(p3.miss), pct(p4.miss)});
            b.add_row({std::to_string(entries),
                       ConsoleTable::num(id.similarity, 4),
                       ConsoleTable::num(p1.similarity, 4),
                       ConsoleTable::num(p2.similarity, 4),
                       ConsoleTable::num(p3.similarity, 4),
                       ConsoleTable::num(p4.similarity, 4)});
        }
        a.print(
            "Figure 15(a): LruTable miss rate vs memory (+P4LRU4 extension, "
            "Section 2.3.3)");
        b.print("Figure 15(b): LruTable LRU similarity vs memory");
    }

    // --- (c)+(d): sweep slow-path latency ---------------------------------
    {
        ConsoleTable c({"dT us", "LRU_IDEAL %", "P4LRU1 %", "P4LRU2 %",
                        "P4LRU3 %"});
        ConsoleTable d({"dT us", "LRU_IDEAL sim", "P4LRU1 sim", "P4LRU2 sim",
                        "P4LRU3 sim"});
        for (const TimeNs dt :
             {10 * kMicrosecond, 40 * kMicrosecond, 160 * kMicrosecond,
              640 * kMicrosecond, 2560 * kMicrosecond}) {
            const auto id = run(trace, Factory::ideal(base_entries), dt);
            const auto p1 = run(trace, Factory::p4lru1(base_entries, 0xB5),
                                dt);
            const auto p2 = run(trace, Factory::p4lru2(base_entries, 0xB5),
                                dt);
            const auto p3 = run(trace, Factory::p4lru3(base_entries, 0xB5),
                                dt);
            c.add_row({std::to_string(dt / 1000), pct(id.miss),
                       pct(p1.miss), pct(p2.miss), pct(p3.miss)});
            d.add_row({std::to_string(dt / 1000),
                       ConsoleTable::num(id.similarity, 4),
                       ConsoleTable::num(p1.similarity, 4),
                       ConsoleTable::num(p2.similarity, 4),
                       ConsoleTable::num(p3.similarity, 4)});
        }
        c.print("Figure 15(c): LruTable miss rate vs slow-path latency");
        d.print("Figure 15(d): LruTable LRU similarity vs slow-path latency");
    }

    std::printf(
        "\nPaper shape: P4LRU3 tracks LRU_IDEAL's miss rate closely at\n"
        "every memory size and latency; P4LRU3 similarity is the highest\n"
        "of the deployable variants and nearly memory-invariant; P4LRU1 <\n"
        "P4LRU2 < P4LRU3 everywhere.\n");
    return 0;
}
