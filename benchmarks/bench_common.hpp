// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary regenerates one table/figure of the paper's evaluation
// (Section 4) and prints the same rows/series. Scale: the paper replays
// 2.6e7-packet CAIDA traces against 2^16-2^17-unit cache arrays; these
// benches default to ~10x smaller traces and correspondingly smaller arrays
// so the whole suite finishes in minutes on a laptop. Set P4LRU_SCALE (e.g.
// 2.0) to grow packet counts and cache sizes proportionally.
#pragma once

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "p4lru/cache/policy.hpp"
#include "p4lru/common/table.hpp"
#include "p4lru/common/types.hpp"
#include "p4lru/trace/trace_gen.hpp"

namespace p4lru::bench {

/// Global scale knob from the environment (default 1.0).
inline double scale() {
    if (const char* s = std::getenv("P4LRU_SCALE")) {
        const double v = std::atof(s);
        if (v > 0) return v;
    }
    return 1.0;
}

inline std::size_t scaled(std::size_t base) {
    return static_cast<std::size_t>(static_cast<double>(base) * scale());
}

/// Default trace size (paper: 2.6e7; here ~1.2e6 per run at scale 1).
inline std::size_t default_packets() { return scaled(1'200'000); }

/// Make a CAIDA_n-like trace.
inline std::vector<PacketRecord> make_trace(std::size_t segments,
                                            std::uint64_t seed = 1,
                                            std::size_t packets = 0) {
    trace::TraceConfig cfg;
    cfg.seed = seed;
    cfg.total_packets = packets ? packets : default_packets();
    cfg.segments = segments;
    return trace::generate_trace(cfg);
}

/// The concurrency sweep of the testbed figures (CAIDA_1 .. CAIDA_60).
inline std::vector<std::size_t> concurrency_sweep() {
    return {1, 10, 20, 30, 40, 50, 60};
}

/// Policy factory for the comparative benches. Key/Value/Merge are template
/// parameters so the same list serves LruTable (FlowKey -> address,
/// replace) and LruMon (fingerprint -> bytes, accumulate).
template <typename Key, typename Value, typename Merge = core::ReplaceMerge>
struct PolicyFactory {
    using Ptr = std::unique_ptr<cache::ReplacementPolicy<Key, Value>>;

    static Ptr p4lru1(std::size_t entries, std::uint32_t seed) {
        return std::make_unique<cache::P4lruArrayPolicy<Key, Value, 1, Merge>>(
            entries, seed);
    }
    static Ptr p4lru2(std::size_t entries, std::uint32_t seed) {
        return std::make_unique<cache::P4lruArrayPolicy<Key, Value, 2, Merge>>(
            entries, seed);
    }
    static Ptr p4lru3(std::size_t entries, std::uint32_t seed) {
        return std::make_unique<cache::P4lruArrayPolicy<Key, Value, 3, Merge>>(
            entries, seed);
    }
    static Ptr ideal(std::size_t entries) {
        return std::make_unique<cache::IdealLruPolicy<Key, Value, Merge>>(
            entries);
    }
    static Ptr timeout(std::size_t entries, std::uint32_t seed, TimeNs t) {
        return std::make_unique<cache::TimeoutPolicy<Key, Value, Merge>>(
            entries, seed, t);
    }
    static Ptr elastic(std::size_t entries, std::uint32_t seed) {
        return std::make_unique<cache::ElasticPolicy<Key, Value, Merge>>(
            entries, seed);
    }
    static Ptr coco(std::size_t entries, std::uint32_t seed) {
        return std::make_unique<cache::CocoPolicy<Key, Value, Merge>>(entries,
                                                                      seed);
    }
};

/// Percent formatting helper.
inline std::string pct(double v) { return ConsoleTable::num(v * 100.0, 2); }

}  // namespace p4lru::bench
