// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary regenerates one table/figure of the paper's evaluation
// (Section 4) and prints the same rows/series. Scale: the paper replays
// 2.6e7-packet CAIDA traces against 2^16-2^17-unit cache arrays; these
// benches default to ~10x smaller traces and correspondingly smaller arrays
// so the whole suite finishes in minutes on a laptop. Set P4LRU_SCALE (e.g.
// 2.0) to grow packet counts and cache sizes proportionally.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "p4lru/cache/policy.hpp"
#include "p4lru/common/stats.hpp"
#include "p4lru/common/table.hpp"
#include "p4lru/common/types.hpp"
#include "p4lru/core/simd/scan_kernels.hpp"
#include "p4lru/replay/affinity.hpp"
#include "p4lru/replay/replay.hpp"
#include "p4lru/trace/trace_gen.hpp"

namespace p4lru::bench {

/// Escape a string for embedding inside a JSON string literal.  The bench
/// writers emit JSON via raw fprintf, so every %s-substituted field must go
/// through here — a kernel name or series label containing `"` or `\` (or a
/// control byte from a corrupted env var) would otherwise produce a file no
/// JSON parser accepts.
inline std::string json_escape(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (const char c : in) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// Global scale knob from the environment (default 1.0).
inline double scale() {
    if (const char* s = std::getenv("P4LRU_SCALE")) {
        const double v = std::atof(s);
        if (v > 0) return v;
    }
    return 1.0;
}

inline std::size_t scaled(std::size_t base) {
    return static_cast<std::size_t>(static_cast<double>(base) * scale());
}

/// Default trace size (paper: 2.6e7; here ~1.2e6 per run at scale 1).
inline std::size_t default_packets() { return scaled(1'200'000); }

/// Make a CAIDA_n-like trace.
inline std::vector<PacketRecord> make_trace(std::size_t segments,
                                            std::uint64_t seed = 1,
                                            std::size_t packets = 0) {
    trace::TraceConfig cfg;
    cfg.seed = seed;
    cfg.total_packets = packets ? packets : default_packets();
    cfg.segments = segments;
    return trace::generate_trace(cfg);
}

/// The concurrency sweep of the testbed figures (CAIDA_1 .. CAIDA_60).
inline std::vector<std::size_t> concurrency_sweep() {
    return {1, 10, 20, 30, 40, 50, 60};
}

/// Policy factory for the comparative benches. Key/Value/Merge are template
/// parameters so the same list serves LruTable (FlowKey -> address,
/// replace) and LruMon (fingerprint -> bytes, accumulate).
template <typename Key, typename Value, typename Merge = core::ReplaceMerge>
struct PolicyFactory {
    using Ptr = std::unique_ptr<cache::ReplacementPolicy<Key, Value>>;

    static Ptr p4lru1(std::size_t entries, std::uint32_t seed) {
        return std::make_unique<cache::P4lruArrayPolicy<Key, Value, 1, Merge>>(
            entries, seed);
    }
    static Ptr p4lru2(std::size_t entries, std::uint32_t seed) {
        return std::make_unique<cache::P4lruArrayPolicy<Key, Value, 2, Merge>>(
            entries, seed);
    }
    static Ptr p4lru3(std::size_t entries, std::uint32_t seed) {
        return std::make_unique<cache::P4lruArrayPolicy<Key, Value, 3, Merge>>(
            entries, seed);
    }
    static Ptr ideal(std::size_t entries) {
        return std::make_unique<cache::IdealLruPolicy<Key, Value, Merge>>(
            entries);
    }
    static Ptr timeout(std::size_t entries, std::uint32_t seed, TimeNs t) {
        return std::make_unique<cache::TimeoutPolicy<Key, Value, Merge>>(
            entries, seed, t);
    }
    static Ptr elastic(std::size_t entries, std::uint32_t seed) {
        return std::make_unique<cache::ElasticPolicy<Key, Value, Merge>>(
            entries, seed);
    }
    static Ptr coco(std::size_t entries, std::uint32_t seed) {
        return std::make_unique<cache::CocoPolicy<Key, Value, Merge>>(entries,
                                                                      seed);
    }
};

/// Percent formatting helper.
inline std::string pct(double v) { return ConsoleTable::num(v * 100.0, 2); }

// ---------------------------------------------------------------------------
// Timing harness: every figure bench reports wall time and Mops/s per series
// so the perf trajectory is visible run over run, and bench_micro_ops emits
// the same numbers machine-readably (BENCH_micro_ops.json).

/// Monotonic wall-clock stopwatch.
class StopWatch {
  public:
    StopWatch() : start_(std::chrono::steady_clock::now()) {}
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/// Accumulates per-series throughput rows and prints them as one table.
class TimingReport {
  public:
    void add(std::string label, std::uint64_t ops, double seconds) {
        rows_.push_back({std::move(label), {ops, seconds}});
    }

    void print(const std::string& caption) const {
        ConsoleTable t({"series", "ops", "wall s", "Mops/s"});
        for (const auto& [label, tp] : rows_) {
            t.add_row({label, std::to_string(tp.ops),
                       ConsoleTable::num(tp.seconds, 3),
                       ConsoleTable::num(tp.mops(), 2)});
        }
        t.print(caption);
    }

    [[nodiscard]] const auto& rows() const noexcept { return rows_; }

  private:
    std::vector<std::pair<std::string, stats::Throughput>> rows_;
};

/// One independent, deterministic figure-series evaluation: replays a trace
/// against one policy configuration and yields a scalar (e.g. miss rate).
struct SeriesJob {
    std::string label;
    std::uint64_t ops = 0;  ///< packets/queries the job replays (reporting)
    std::function<double()> fn;
};

struct SeriesResult {
    double value = 0.0;
    double seconds = 0.0;
};

/// Evaluate all jobs, concurrently when the machine has spare cores (each
/// job owns its policy/system instance and fixed seeds, so results are
/// deterministic and land at the job's index). Single-core machines run
/// inline — thread overhead would only slow the suite down.
inline std::vector<SeriesResult> run_series(
    const std::vector<SeriesJob>& jobs, TimingReport* report = nullptr) {
    std::vector<SeriesResult> results(jobs.size());
    const std::size_t hw = std::thread::hardware_concurrency();
    const std::size_t workers =
        std::min<std::size_t>(jobs.size(), hw > 1 ? hw : 1);
    if (workers <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            StopWatch w;
            results[i].value = jobs[i].fn();
            results[i].seconds = w.seconds();
        }
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t t = 0; t < workers; ++t) {
            pool.emplace_back([&] {
                while (true) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= jobs.size()) return;
                    StopWatch w;
                    results[i].value = jobs[i].fn();
                    results[i].seconds = w.seconds();
                }
            });
        }
        for (auto& th : pool) th.join();
    }
    if (report) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            report->add(jobs[i].label, jobs[i].ops, results[i].seconds);
        }
    }
    return results;
}

// ---------------------------------------------------------------------------
// System-series engine harness (DESIGN.md §11): the fig09-11 testbed benches
// drive their system ReplayTargets through the shared replay engine along an
// engine-mode axis — the sequential reference first, then inline-batched and
// threaded-sharded runs — instead of bespoke process() loops.  The engine
// contract makes every axis point produce bit-identical statistics, which
// each point cross-checks against the sequential reference.

/// One point of the engine-mode axis.
struct EngineMode {
    std::string name;             ///< "sequential", "sharded_w4", ...
    std::size_t workers = 0;      ///< 0 = sequential (reference) replay
    replay::ShardedConfig cfg{};  ///< engine knobs when workers > 0
};

/// The sequential reference alone — for figure points that only need the
/// report, where re-running the whole axis would bloat the suite's runtime.
inline std::vector<EngineMode> sequential_axis() {
    return {EngineMode{"sequential", 0, {}}};
}

/// Full axis: sequential reference, one-worker inline batching, and
/// threaded-sharded runs at 2 and 4 workers.  Worker counts above the
/// affinity-mask CPU count still run (and still agree bit for bit); their
/// wall time then measures scheduling overhead rather than speedup, which
/// the JSON's hardware_threads field lets consumers discount.
inline std::vector<EngineMode> engine_mode_axis() {
    std::vector<EngineMode> axis = sequential_axis();
    for (const std::size_t w : {1u, 2u, 4u}) {
        replay::ShardedConfig cfg;
        cfg.shards = w;
        cfg.mode = w == 1 ? replay::Mode::kInline : replay::Mode::kThreaded;
        axis.push_back(
            {"sharded_w" + std::to_string(w), w, cfg});
    }
    return axis;
}

/// One engine-axis measurement of a system target.
template <typename Stats>
struct SystemModePoint {
    std::string mode;
    std::size_t workers = 0;  ///< 0 for the sequential reference
    Stats stats{};
    double wall_s = 0.0;
    double mops = 0.0;
    /// Whether this point's statistics equal the axis' sequential reference
    /// (vacuously true for the reference itself).  Anything but true is an
    /// engine-equivalence violation worth flagging in the bench output.
    bool matches_sequential = true;
};

/// Drive fresh `make()`-constructed targets over an op source, once per
/// axis entry, rewinding the source (seek(0)) before each mode so every
/// entry replays the identical op stream.  Each entry owns its own target
/// instance (identical seeds come from the factory), so the runs are
/// independent and any statistics drift between modes is the engine's
/// fault, not shared state's.  Source failures throw (benches have no
/// recovery story — a broken trace file should abort the figure loudly).
template <typename TargetFactory, typename Source>
auto run_system_series_stream(TargetFactory&& make, Source& source,
                              const std::vector<EngineMode>& axis) {
    using Target = std::decay_t<std::invoke_result_t<TargetFactory&>>;
    using Stats = typename Target::Stats;
    std::vector<SystemModePoint<Stats>> out;
    out.reserve(axis.size());
    Stats reference{};
    bool have_reference = false;
    for (const auto& m : axis) {
        Target target = make();
        SystemModePoint<Stats> pt;
        pt.mode = m.name;
        pt.workers = m.workers;
        if (Status st = source.seek(0); !st.is_ok()) {
            throw std::runtime_error("run_system_series: rewind failed: " +
                                     st.to_string());
        }
        const std::uint64_t ops = source.size();
        StopWatch w;
        if (m.workers == 0) {
            pt.stats =
                replay::replay_target_sequential_stream(target, source)
                    .value();
        } else {
            pt.stats = replay::replay_target_sharded_stream(target, source,
                                                            m.cfg)
                           .value()
                           .stats;
        }
        pt.wall_s = w.seconds();
        pt.mops = pt.wall_s > 0.0
                      ? static_cast<double>(ops) / pt.wall_s / 1e6
                      : 0.0;
        if (m.workers == 0 && !have_reference) {
            reference = pt.stats;
            have_reference = true;
        } else if (have_reference) {
            pt.matches_sequential = pt.stats == reference;
        }
        out.push_back(std::move(pt));
    }
    return out;
}

/// In-memory entry point: wraps `ops` in a SpanOpSource and streams it.
template <typename TargetFactory, typename Op>
auto run_system_series(TargetFactory&& make, const std::vector<Op>& ops,
                       const std::vector<EngineMode>& axis) {
    replay::SpanOpSource<Op> source(
        std::span<const Op>(ops.data(), ops.size()));
    return run_system_series_stream(std::forward<TargetFactory>(make),
                                    source, axis);
}

// ---------------------------------------------------------------------------
// Machine-readable benchmark output (BENCH_*.json).

/// One replay-throughput series of bench_micro_ops.  Schema 3 tags each
/// series with the unit-storage layout (AoS-vs-SoA speedup tracked run over
/// run), the scan kernel that executed it, and the update path (per-op vs
/// batched).
struct ReplayJsonSeries {
    std::string name;        ///< "sequential" / "sharded" / "kernel" / ...
    std::string layout;      ///< "aos" / "soa" (UnitStorage::layout_name())
    std::size_t workers = 0; ///< shard count (0 for sequential)
    std::string mode;        ///< "sequential" / "threaded" / "inline" / ...
    std::string kernel;      ///< scan kernel active for the series
    std::string path;        ///< "per_op" / "batched"
    double wall_s = 0.0;
    double mops = 0.0;
    std::uint64_t ops = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
};

/// The number of hardware threads the process can actually use — the
/// affinity-mask-aware count, not hardware_concurrency() (which ignores
/// taskset/cgroup masks and may return 0).  Series interpretation depends
/// on it: an N-worker "threaded" row on a 1-CPU machine measures scheduling
/// overhead, not parallel speedup.
inline std::size_t usable_hardware_threads() {
    return replay::pinnable_cpus();
}

/// Emit the throughput baseline consumed by later PRs' perf tracking.
/// Schema 3: top-level scan-kernel identity (dispatched kernel + CPU
/// features) and per-series kernel/path tags.
inline bool write_replay_json(const std::string& path, std::size_t packets,
                              std::size_t units, double scale_value,
                              const std::vector<ReplayJsonSeries>& series) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    const core::simd::CpuFeatures feat = core::simd::cpu_features();
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"micro_ops_replay\",\n"
                 "  \"schema\": 3,\n"
                 "  \"scale\": %.3f,\n"
                 "  \"packets\": %zu,\n"
                 "  \"units\": %zu,\n"
                 "  \"hardware_threads\": %zu,\n"
                 "  \"kernel\": \"%s\",\n"
                 "  \"cpu_features\": {\"sse2\": %s, \"avx2\": %s, "
                 "\"neon\": %s},\n"
                 "  \"series\": [\n",
                 scale_value, packets, units, usable_hardware_threads(),
                 json_escape(core::simd::kernel_name(
                                 core::simd::dispatched_kernel()))
                     .c_str(),
                 feat.sse2 ? "true" : "false", feat.avx2 ? "true" : "false",
                 feat.neon ? "true" : "false");
    for (std::size_t i = 0; i < series.size(); ++i) {
        const auto& s = series[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"layout\": \"%s\", \"workers\": %zu, "
            "\"mode\": \"%s\", \"kernel\": \"%s\", \"path\": \"%s\", "
            "\"wall_s\": %.6f, \"mops\": %.3f, \"ops\": %llu, "
            "\"hits\": %llu, \"misses\": %llu, \"evictions\": %llu}%s\n",
            json_escape(s.name).c_str(), json_escape(s.layout).c_str(),
            s.workers, json_escape(s.mode).c_str(),
            json_escape(s.kernel).c_str(), json_escape(s.path).c_str(),
            s.wall_s, s.mops,
            static_cast<unsigned long long>(s.ops),
            static_cast<unsigned long long>(s.hits),
            static_cast<unsigned long long>(s.misses),
            static_cast<unsigned long long>(s.evictions),
            i + 1 < series.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
}

/// One engine-mode row of a system testbed bench (BENCH_fig*.json): a
/// figure series replayed under one engine mode, with the series' headline
/// metric and the equivalence verdict against the sequential reference.
struct SystemJsonSeries {
    std::string series;       ///< figure series label, e.g. "CAIDA60/P4LRU3"
    std::string mode;         ///< engine-axis entry name
    std::size_t workers = 0;  ///< 0 for the sequential reference
    std::uint64_t ops = 0;
    double wall_s = 0.0;
    double mops = 0.0;
    bool matches_sequential = true;
    std::string metric_name;  ///< e.g. "miss_rate", "upload_kpps"
    double metric = 0.0;
};

/// Convert an engine-axis sweep into JSON rows under one series label.
/// `metric` maps the (merged, mode-invariant) statistics to the figure's
/// headline scalar, evaluated per point so a mismatch stays visible.
template <typename Stats, typename MetricFn>
void append_system_series(std::vector<SystemJsonSeries>& out,
                          const std::string& label, std::uint64_t ops,
                          const std::vector<SystemModePoint<Stats>>& points,
                          const std::string& metric_name, MetricFn metric) {
    for (const auto& p : points) {
        SystemJsonSeries row;
        row.series = label;
        row.mode = p.mode;
        row.workers = p.workers;
        row.ops = ops;
        row.wall_s = p.wall_s;
        row.mops = p.mops;
        row.matches_sequential = p.matches_sequential;
        row.metric_name = metric_name;
        row.metric = metric(p.stats);
        out.push_back(std::move(row));
    }
}

/// Emit a system testbed bench's engine-mode series (schema 1).
inline bool write_system_json(const std::string& path,
                              const std::string& bench,
                              const std::vector<SystemJsonSeries>& series) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"schema\": 1,\n"
                 "  \"scale\": %.3f,\n"
                 "  \"hardware_threads\": %zu,\n"
                 "  \"series\": [\n",
                 json_escape(bench).c_str(), scale(),
                 usable_hardware_threads());
    for (std::size_t i = 0; i < series.size(); ++i) {
        const auto& s = series[i];
        std::fprintf(
            f,
            "    {\"series\": \"%s\", \"mode\": \"%s\", \"workers\": %zu, "
            "\"ops\": %llu, \"wall_s\": %.6f, \"mops\": %.3f, "
            "\"matches_sequential\": %s, \"%s\": %.6f}%s\n",
            json_escape(s.series).c_str(), json_escape(s.mode).c_str(),
            s.workers, static_cast<unsigned long long>(s.ops), s.wall_s,
            s.mops, s.matches_sequential ? "true" : "false",
            json_escape(s.metric_name).c_str(), s.metric,
            i + 1 < series.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
}

}  // namespace p4lru::bench
