// Figure 11 — LruMon testbed experiment (CM-sketch filter, as the paper's
// testbed uses; reset period 10 ms).
//   (a) upload rate (KPPS) vs traffic concurrency, threshold 1500 B
//   (b) upload rate vs filter threshold, CAIDA_60
// Series: P4LRU3 and Baseline (hash-table cache).
//
// The replay runs through the generic engine (LruMonTarget +
// run_system_series): figure points use the sequential reference, and the
// heaviest trace (CAIDA_60 at threshold 1500) additionally sweeps the
// engine-mode axis — inline batching and 2/4-worker threaded sharding —
// emitting a multi-worker series to BENCH_fig11_lrumon.json with a
// bit-equality check against the sequential statistics.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "p4lru/systems/lrumon/lrumon_target.hpp"

using namespace p4lru;
using namespace p4lru::bench;
using namespace p4lru::systems::lrumon;

namespace {

using Factory = PolicyFactory<std::uint32_t, FlowLen, core::AddMerge>;

// The target partitions the monitor by fingerprint32(flow) % G; both series
// run with the same geometry so P4LRU3-vs-Baseline stays apples-to-apples.
constexpr std::size_t kPartitions = 8;

/// Per-partition CM filter slice: the sketch width is split across the
/// partitions (same total counter budget as one monolithic filter), each
/// slice distinctly seeded.
LruMonTarget::FilterFactory filter_slices() {
    return [](std::size_t p) {
        FilterConfig fcfg;
        fcfg.reset_period = 10 * kMillisecond;
        fcfg.cm_width =
            std::max<std::size_t>(scaled(1u << 16) / kPartitions, 64);
        fcfg.seed = 0x70EEE + p * 0x9E3779B9ull;
        return make_filter(FilterKind::kCm, fcfg);
    };
}

/// Per-partition cache slice from one of the Factory::p4lruN constructors.
template <typename Make>
LruMonTarget::PolicyFactory policy_slices(std::size_t total,
                                          std::uint32_t seed, Make make) {
    const std::size_t per = std::max<std::size_t>(total / kPartitions, 3);
    return [per, seed, make](std::size_t p) {
        return make(per, seed + static_cast<std::uint32_t>(p) * 0x9E37u);
    };
}

struct RunResult {
    LruMonReport report;  ///< from the sequential reference statistics
    std::vector<SystemModePoint<LruMonStats>> modes;
};

RunResult run(const std::vector<PacketRecord>& trace,
              const LruMonTarget::PolicyFactory& policies,
              std::uint32_t threshold, const std::vector<EngineMode>& axis) {
    LruMonConfig cfg;
    cfg.threshold = threshold;
    cfg.track_ground_truth = false;  // testbed figure measures uploads only
    const auto make = [&] {
        return LruMonTarget(kPartitions, filter_slices(), policies, cfg);
    };
    RunResult r;
    r.modes = run_system_series(make, trace, axis);
    r.report = LruMonTarget(kPartitions, filter_slices(), policies, cfg)
                   .report(r.modes.front().stats);
    return r;
}

double upload_kpps(const LruMonStats& s) {
    const double secs = (s.ops != 0 && s.last_ts > s.first_ts)
                            ? static_cast<double>(s.last_ts - s.first_ts) / 1e9
                            : 1.0;
    return static_cast<double>(s.uploads) / secs / 1e3;
}

}  // namespace

int main() {
    // Sized so elephant flows contend for the cache (the regime where the
    // replacement policy matters, as on the paper's testbed).
    const std::size_t entries = scaled(3 * (1u << 8));
    std::vector<SystemJsonSeries> json;

    // --- (a) upload rate vs concurrency ----------------------------------
    {
        ConsoleTable t({"trace", "max concurrent flows", "P4LRU3 KPPS",
                        "Baseline KPPS", "improvement x"});
        for (const std::size_t n : concurrency_sweep()) {
            const auto trace = make_trace(n, 70 + n);
            const auto stats = trace::compute_stats(trace);
            const auto axis =
                n == 60 ? engine_mode_axis() : sequential_axis();
            const auto p3 =
                run(trace, policy_slices(entries, 0xD1, Factory::p4lru3),
                    1500, axis);
            const auto p1 =
                run(trace, policy_slices(entries, 0xD1, Factory::p4lru1),
                    1500, axis);
            const std::string tag = "CAIDA" + std::to_string(n);
            append_system_series(json, tag + "/P4LRU3", trace.size(),
                                 p3.modes, "upload_kpps", upload_kpps);
            append_system_series(json, tag + "/Baseline", trace.size(),
                                 p1.modes, "upload_kpps", upload_kpps);
            t.add_row({tag, std::to_string(stats.max_concurrent),
                       ConsoleTable::num(p3.report.upload_kpps, 1),
                       ConsoleTable::num(p1.report.upload_kpps, 1),
                       ConsoleTable::num(
                           p1.report.upload_kpps / p3.report.upload_kpps,
                           2)});
        }
        t.print("Figure 11(a): LruMon upload rate vs concurrency");
    }

    // --- (b) upload rate vs filter threshold -----------------------------
    {
        const auto trace = make_trace(60, 71);
        ConsoleTable t({"threshold B", "P4LRU3 KPPS", "Baseline KPPS",
                        "improvement x"});
        for (const std::uint32_t thr : {500u, 1000u, 1500u, 3000u, 6000u}) {
            const auto p3 =
                run(trace, policy_slices(entries, 0xD2, Factory::p4lru3),
                    thr, sequential_axis());
            const auto p1 =
                run(trace, policy_slices(entries, 0xD2, Factory::p4lru1),
                    thr, sequential_axis());
            t.add_row({std::to_string(thr),
                       ConsoleTable::num(p3.report.upload_kpps, 1),
                       ConsoleTable::num(p1.report.upload_kpps, 1),
                       ConsoleTable::num(
                           p1.report.upload_kpps / p3.report.upload_kpps,
                           2)});
        }
        t.print("Figure 11(b): LruMon upload rate vs filter threshold");
    }

    bool all_match = true;
    for (const auto& row : json) all_match &= row.matches_sequential;
    write_system_json("BENCH_fig11_lrumon.json", "fig11_lrumon", json);
    std::printf(
        "\nEngine axis (CAIDA60): inline + 2/4-worker sharded replays %s\n"
        "the sequential statistics bit for bit; series in "
        "BENCH_fig11_lrumon.json.\n",
        all_match ? "match" : "MISMATCH");
    std::printf(
        "\nPaper shape: upload rate grows with concurrency (35.5 -> 74.0\n"
        "KPPS for P4LRU3 vs 48.0 -> 93.7 for the baseline, up to 1.35x)\n"
        "and falls as the threshold rises (92.9 -> 36.0 vs 115.8 -> 47.9,\n"
        "up to 1.33x).\n");
    return all_match ? 0 : 1;
}
