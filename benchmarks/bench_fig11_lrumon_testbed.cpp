// Figure 11 — LruMon testbed experiment (CM-sketch filter, as the paper's
// testbed uses; reset period 10 ms).
//   (a) upload rate (KPPS) vs traffic concurrency, threshold 1500 B
//   (b) upload rate vs filter threshold, CAIDA_60
// Series: P4LRU3 and Baseline (hash-table cache).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "p4lru/systems/lrumon/lrumon.hpp"

using namespace p4lru;
using namespace p4lru::bench;
using namespace p4lru::systems::lrumon;

namespace {

using Factory = PolicyFactory<std::uint32_t, FlowLen, core::AddMerge>;

LruMonReport run(const std::vector<PacketRecord>& trace, Factory::Ptr policy,
                 std::uint32_t threshold) {
    FilterConfig fcfg;
    fcfg.reset_period = 10 * kMillisecond;
    fcfg.cm_width = scaled(1u << 16);
    LruMonConfig cfg;
    cfg.threshold = threshold;
    cfg.track_ground_truth = false;  // testbed figure measures uploads only
    LruMonSystem sys(make_filter(FilterKind::kCm, fcfg), std::move(policy),
                     cfg);
    for (const auto& p : trace) sys.process(p);
    sys.finish();
    return sys.report();
}

}  // namespace

int main() {
    // Sized so elephant flows contend for the cache (the regime where the
    // replacement policy matters, as on the paper's testbed).
    const std::size_t entries = scaled(3 * (1u << 8));

    // --- (a) upload rate vs concurrency ----------------------------------
    {
        ConsoleTable t({"trace", "max concurrent flows", "P4LRU3 KPPS",
                        "Baseline KPPS", "improvement x"});
        for (const std::size_t n : concurrency_sweep()) {
            const auto trace = make_trace(n, 70 + n);
            const auto stats = trace::compute_stats(trace);
            const auto p3 = run(trace, Factory::p4lru3(entries, 0xD1), 1500);
            const auto p1 = run(trace, Factory::p4lru1(entries, 0xD1), 1500);
            t.add_row({"CAIDA" + std::to_string(n),
                       std::to_string(stats.max_concurrent),
                       ConsoleTable::num(p3.upload_kpps, 1),
                       ConsoleTable::num(p1.upload_kpps, 1),
                       ConsoleTable::num(p1.upload_kpps / p3.upload_kpps,
                                         2)});
        }
        t.print("Figure 11(a): LruMon upload rate vs concurrency");
    }

    // --- (b) upload rate vs filter threshold -----------------------------
    {
        const auto trace = make_trace(60, 71);
        ConsoleTable t({"threshold B", "P4LRU3 KPPS", "Baseline KPPS",
                        "improvement x"});
        for (const std::uint32_t thr : {500u, 1000u, 1500u, 3000u, 6000u}) {
            const auto p3 = run(trace, Factory::p4lru3(entries, 0xD2), thr);
            const auto p1 = run(trace, Factory::p4lru1(entries, 0xD2), thr);
            t.add_row({std::to_string(thr),
                       ConsoleTable::num(p3.upload_kpps, 1),
                       ConsoleTable::num(p1.upload_kpps, 1),
                       ConsoleTable::num(p1.upload_kpps / p3.upload_kpps,
                                         2)});
        }
        t.print("Figure 11(b): LruMon upload rate vs filter threshold");
    }

    std::printf(
        "\nPaper shape: upload rate grows with concurrency (35.5 -> 74.0\n"
        "KPPS for P4LRU3 vs 48.0 -> 93.7 for the baseline, up to 1.35x)\n"
        "and falls as the threshold rises (92.9 -> 36.0 vs 115.8 -> 47.9,\n"
        "up to 1.33x).\n");
    return 0;
}
